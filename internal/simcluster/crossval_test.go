package simcluster

import (
	"testing"

	"github.com/dpx10/dpx10/internal/codec"
	"github.com/dpx10/dpx10/internal/core"
	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dag/patterns"
	"github.com/dpx10/dpx10/internal/dist"
)

// TestSimMatchesEngineTraffic cross-validates the simulator against the
// real runtime: with the cache off and local scheduling, the number of
// remote dependency transfers is a deterministic function of (pattern,
// distribution) — every vertex fetches each remotely-owned dependency
// exactly once — so the simulator and the engine must agree exactly.
// This pins the simulator's communication model to the engine's actual
// behaviour, which is what makes the simulated Figures 10/11/13 credible.
func TestSimMatchesEngineTraffic(t *testing.T) {
	cases := []struct {
		name   string
		pat    dag.Pattern
		places int
		nd     func(h, w int32, n int) dist.Dist
	}{
		{"diagonal/blockrow", patterns.NewDiagonal(18, 15), 3,
			func(h, w int32, n int) dist.Dist { return dist.NewBlockRow(h, w, n) }},
		{"grid/blockcol", patterns.NewGrid(12, 16), 4,
			func(h, w int32, n int) dist.Dist { return dist.NewBlockCol(h, w, n) }},
		{"interval/blockrow", patterns.NewInterval(14), 3,
			func(h, w int32, n int) dist.Dist { return dist.NewBlockRow(h, w, n) }},
		{"triangle/cyclicrow", patterns.NewTriangle(10), 3,
			func(h, w int32, n int) dist.Dist { return dist.NewCyclicRow(h, w, n) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h, w := tc.pat.Bounds()

			// Real engine, cache off, local scheduling.
			cfg := core.Config[int64]{
				Common: core.Common{Places: tc.places, Pattern: tc.pat, NewDist: tc.nd},
				Codec:  codec.Int64{},
				Compute: func(i, j int32, deps []core.Cell[int64]) int64 {
					v := int64(i) + int64(j)
					for _, d := range deps {
						v += d.Value
					}
					return v
				},
			}
			cl, err := core.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			engineFetches := cl.Stats().RemoteFetches

			// Simulator, same pattern and distribution.
			sim, err := New(tc.pat, tc.nd(h, w, tc.places), DefaultModel(2))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.RemoteFetches != engineFetches {
				t.Fatalf("simulator models %d remote fetches, engine measured %d",
					res.RemoteFetches, engineFetches)
			}
			if res.ComputedCells != cl.Stats().ComputedCells {
				t.Fatalf("simulator computed %d cells, engine %d",
					res.ComputedCells, cl.Stats().ComputedCells)
			}
		})
	}
}

// TestSimCacheUpperBound: with a cache the engine's fetch count is
// schedule-dependent, but it can never exceed the cache-off count, and
// the simulator's cached count is a valid point in the same range.
func TestSimCacheUpperBound(t *testing.T) {
	pat := patterns.NewColWave(10, 20)
	nd := func(h, w int32, n int) dist.Dist { return dist.NewBlockRow(h, w, n) }
	run := func(cache int) int64 {
		cfg := core.Config[int64]{
			Common: core.Common{Places: 3, Pattern: pat, NewDist: nd, CacheSize: cache},
			Codec:  codec.Int64{},
			Compute: func(i, j int32, deps []core.Cell[int64]) int64 {
				return int64(len(deps))
			},
		}
		cl, err := core.NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return cl.Stats().RemoteFetches
	}
	uncached := run(0)
	cached := run(128)
	m := DefaultModel(2)
	m.CacheSize = 128
	h, w := pat.Bounds()
	sim, err := New(pat, nd(h, w, 3), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached > uncached || res.RemoteFetches > uncached {
		t.Fatalf("cached fetch counts exceed the cache-off bound: engine %d, sim %d, bound %d",
			cached, res.RemoteFetches, uncached)
	}
	if res.RemoteFetches == uncached {
		t.Fatal("simulated cache had no effect")
	}
}
