// Package simcluster is a deterministic discrete-event simulator of the
// DPX10 execution model.
//
// The paper's evaluation ran on 12 nodes of Tianhe-1A (§VIII); this
// machine has one core, so wall-clock speedup curves cannot be measured
// directly. The simulator substitutes for that testbed: it executes the
// same scheduling discipline the real engine uses — per-place worker
// cores, FIFO ready lists, dependency fetches over a latency/bandwidth
// network with a per-place FIFO cache, recovery by redistribution — but
// advances virtual clocks instead of running user code. The shapes the
// paper reports (speedup saturation from wavefront dependencies, linear
// scaling with size, recovery time halving with node count) emerge from
// the model, and every policy knob (distribution, cache, restore mode)
// is shared with the real engine's packages.
//
// Vertices can stand for tiles: simulating a 300M-vertex SWLAG as a
// 3000×1000 tile DAG with 100k cells per tile just scales ComputeCost and
// FetchBytes accordingly (the benchmark harness does exactly that, and
// EXPERIMENTS.md documents the mapping).
package simcluster

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dist"
	"github.com/dpx10/dpx10/internal/vcache"
)

// Model holds the cost parameters of the simulated cluster.
type Model struct {
	// CoresPerPlace is the worker pool width per place (X10_NTHREADS).
	CoresPerPlace int
	// ComputeCost is the virtual seconds to execute one vertex.
	ComputeCost float64
	// NetLatency is the per-message virtual latency between distinct
	// places, seconds.
	NetLatency float64
	// NetBandwidth is the link bandwidth, bytes per virtual second.
	NetBandwidth float64
	// FetchBytes is the payload of one dependency value transfer.
	FetchBytes int64
	// FetchMsgs is how many wire messages one dependency transfer takes
	// (default 1). Dependencies whose cells are scattered — 0/1KP's
	// (i-1, j-w_i) — cannot be batched into a single contiguous request,
	// so a tile-level dependency costs one message per cell of its
	// boundary segment.
	FetchMsgs int64
	// DecrBytes is the payload of one indegree-decrement notification.
	DecrBytes int64
	// CacheSize is the per-place FIFO vertex cache capacity, entries.
	CacheSize int
	// RecoveryCellCost is the per-local-cell cost of the recovery scan
	// (allocate + init indegree + replay), seconds. The recovery runs in
	// parallel across survivors, so the paper's "time halves with twice
	// the nodes" follows from the max over places.
	RecoveryCellCost float64
	// TrackFinishTimes records each vertex's virtual finish time for the
	// causality checks in the test suite. Costs 8 bytes per cell.
	TrackFinishTimes bool
	// PlaceSpeed optionally scales each place's compute cost (index =
	// place id; 1.0 = nominal, 2.0 = half speed). Models heterogeneous
	// or straggling nodes; places absent from the map are nominal.
	PlaceSpeed map[int]float64
	// Steal lets a ready vertex execute at whichever place completes it
	// earliest instead of only at its owner: remote execution pays a
	// fetch of every dependency from wherever it lives plus a result
	// write-back. This models the engine's work-stealing strategy in
	// steady state (an idle place pulls work exactly when doing so beats
	// waiting for the owner's cores).
	Steal bool
	// AggWindow models the engine's outbound decrement aggregator: the
	// cross-place decrements one place owes another within this virtual-
	// time window ride a single message, flushed at the window deadline
	// (or earlier at AggMaxBatch records). 0 keeps per-vertex messages.
	AggWindow float64
	// AggMaxBatch flushes an open batch once it holds this many source
	// records, matching the engine's size trigger. Default 256.
	AggMaxBatch int
	// ValuePush piggybacks each finished vertex's value (FetchBytes) onto
	// its cross-place batch record and deposits it into the destination's
	// cache on arrival, so downstream dependency reads hit the cache
	// instead of paying a fetch round-trip. Needs CacheSize > 0 and an
	// AggWindow to ride on.
	ValuePush bool
	// ChaosDropProb models the engine's chaos arm in expectation: each
	// cross-place message is lost with this probability and retried by the
	// reliable layer, so the expected transfer cost of one delivered
	// message scales by 1/(1-p). Must be < 1.
	ChaosDropProb float64
	// ChaosDupProb is the probability a delivered message is sent twice;
	// the duplicate is suppressed by receiver dedup but still burns link
	// bandwidth.
	ChaosDupProb float64
	// ChaosDelayMean is the expected extra latency injected per message,
	// virtual seconds (probability × mean hold time of the delay fault).
	ChaosDelayMean float64
	// SchedCost is the per-vertex scheduling overhead (queue ops, cache
	// lookup, decrement bookkeeping), virtual seconds. Tile-granular
	// execution amortizes it: the charge per vertex is SchedCost /
	// max(1, TileSize), matching the engine where one tile dispatch
	// covers TileSize cells.
	SchedCost float64
	// TileSize is the scheduling granularity in cells assumed by the
	// SchedCost amortization above. 0 or 1 charges the full overhead on
	// every vertex (per-vertex scheduling).
	TileSize int
}

// DefaultModel gives parameters loosely calibrated to the paper's
// testbed: ~1µs of work per vertex-tile unit, ~20µs message latency
// (Infiniband-ish at MPI level), 1 GB/s effective bandwidth.
func DefaultModel(cores int) Model {
	return Model{
		CoresPerPlace:    cores,
		ComputeCost:      1e-6,
		NetLatency:       20e-6,
		NetBandwidth:     1e9,
		FetchBytes:       8,
		DecrBytes:        12,
		CacheSize:        0,
		RecoveryCellCost: 2e-7,
	}
}

// Result reports one simulated run.
type Result struct {
	Makespan      float64 // virtual seconds until the last vertex finished
	RecoveryTime  float64 // virtual seconds spent in recovery (0 if none)
	ComputedCells int64   // vertex executions, recomputation included
	RemoteFetches int64   // dependency values moved between places
	CacheHits     int64
	Messages      int64
	BytesMoved    int64
	AggBatches    int64 // aggregated decrement messages (AggWindow > 0)
}

type evKind uint8

const (
	evDecr       evKind = iota // a dependency-satisfied notification arrives
	evFinish                   // a vertex completes at its place
	evBatchFlush               // an aggregation window expires at the sender
	evBatchApply               // an aggregated batch arrives at its destination
)

type event struct {
	t     float64
	seq   int64 // insertion order, for deterministic tie-breaking
	kind  evKind
	id    dag.VertexID
	batch *simBatch // evBatchFlush / evBatchApply only
}

// simBatch is one open (or in-flight) aggregated decrement message from
// place src to place dst, mirroring the engine's per-destination buffer.
type simBatch struct {
	src, dst int
	recs     []batchRec
	flushed  bool
}

// batchRec is one source vertex's contribution: its identity (for the
// value-push cache deposit) and its decrement targets at dst.
type batchRec struct {
	src     dag.VertexID
	targets []dag.VertexID
}

// bytes returns the modeled wire size of the batch, mirroring the real
// kindDecrBatch layout: 12-byte header, 13 bytes per record (src id +
// flags + target count), 8 per target id, plus the pushed value.
func (b *simBatch) bytes(m *Model) int64 {
	n := int64(12)
	for _, rec := range b.recs {
		n += 13 + 8*int64(len(rec.targets))
		if m.ValuePush {
			n += m.FetchBytes
		}
	}
	return n
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Sim is one simulation instance. Not safe for concurrent use.
type Sim struct {
	pat dag.Pattern
	d   dist.Dist
	m   Model

	h, w     int32
	indeg    []int32
	finished []bool
	active   int64
	done     int64

	events eventHeap
	seq    int64
	// open holds the per-(src place, dst place) aggregation buffers when
	// the model's AggWindow is set.
	open map[[2]int]*simBatch
	// cores[p] is a min-heap (plain sorted maintenance: small k) of the
	// times at which place p's cores become free.
	cores  map[int][]float64
	caches map[int]*vcache.Cache[struct{}]

	now      float64
	res      Result
	finishAt []float64       // per-cell finish time when TrackFinishTimes
	busy     map[int]float64 // per-place cumulative core-busy virtual time
}

// New builds a simulation of pattern pat distributed by d under model m.
func New(pat dag.Pattern, d dist.Dist, m Model) (*Sim, error) {
	h, w := pat.Bounds()
	dh, dw := d.Bounds()
	if dh != h || dw != w {
		return nil, fmt.Errorf("simcluster: dist %dx%d does not match pattern %dx%d", dh, dw, h, w)
	}
	if m.CoresPerPlace < 1 {
		return nil, fmt.Errorf("simcluster: CoresPerPlace = %d", m.CoresPerPlace)
	}
	if m.NetBandwidth <= 0 {
		return nil, fmt.Errorf("simcluster: NetBandwidth must be positive")
	}
	s := &Sim{
		pat: pat, d: d, m: m,
		h: h, w: w,
		indeg:    make([]int32, int64(h)*int64(w)),
		finished: make([]bool, int64(h)*int64(w)),
		cores:    make(map[int][]float64),
		caches:   make(map[int]*vcache.Cache[struct{}]),
		busy:     make(map[int]float64),
	}
	for _, p := range d.Places() {
		cs := make([]float64, m.CoresPerPlace)
		s.cores[p] = cs
		s.caches[p] = vcache.New[struct{}](m.CacheSize)
	}
	if m.TrackFinishTimes {
		s.finishAt = make([]float64, int64(h)*int64(w))
	}
	var buf []dag.VertexID
	for i := int32(0); i < h; i++ {
		for j := int32(0); j < w; j++ {
			lin := dag.VertexID{I: i, J: j}.Linear(w)
			if !dag.IsActive(pat, i, j) {
				s.finished[lin] = true
				continue
			}
			s.active++
			buf = pat.Dependencies(i, j, buf[:0])
			s.indeg[lin] = int32(len(buf))
		}
	}
	// Seed source vertices at t = 0.
	for i := int32(0); i < h; i++ {
		for j := int32(0); j < w; j++ {
			id := dag.VertexID{I: i, J: j}
			if dag.IsActive(pat, i, j) && s.indeg[id.Linear(w)] == 0 {
				s.schedule(id, 0)
			}
		}
	}
	return s, nil
}

func (s *Sim) push(t float64, kind evKind, id dag.VertexID) {
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, kind: kind, id: id})
}

func (s *Sim) pushBatch(t float64, kind evKind, b *simBatch) {
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, kind: kind, batch: b})
}

// addToBatch buffers one finished vertex's decrements toward place dst,
// opening a (src,dst) batch with a flush deadline when none is pending and
// flushing inline at the size trigger — the simulator's mirror of
// aggregator.add.
func (s *Sim) addToBatch(src dag.VertexID, p, dst int, targets []dag.VertexID) {
	if s.open == nil {
		s.open = make(map[[2]int]*simBatch)
	}
	key := [2]int{p, dst}
	b := s.open[key]
	if b == nil {
		b = &simBatch{src: p, dst: dst}
		s.open[key] = b
		s.pushBatch(s.now+s.m.AggWindow, evBatchFlush, b)
	}
	b.recs = append(b.recs, batchRec{src: src, targets: append([]dag.VertexID(nil), targets...)})
	maxRecs := s.m.AggMaxBatch
	if maxRecs < 1 {
		maxRecs = 256
	}
	if len(b.recs) >= maxRecs {
		s.flushBatch(b, s.now)
	}
}

// flushBatch puts an open batch on the wire: one message charged at the
// batch's full size, applied at the destination after the transfer time.
func (s *Sim) flushBatch(b *simBatch, t float64) {
	if b.flushed || len(b.recs) == 0 {
		return
	}
	b.flushed = true
	delete(s.open, [2]int{b.src, b.dst})
	bytes := b.bytes(&s.m)
	s.res.Messages++
	s.res.AggBatches++
	s.res.BytesMoved += bytes
	s.pushBatch(t+s.msgCost(bytes), evBatchApply, b)
}

// popCore returns the earliest time a core at place p is free and marks
// it busy until `until` (set by the caller via setCore).
func (s *Sim) popCoreIdx(p int) int {
	cs := s.cores[p]
	best := 0
	for k := 1; k < len(cs); k++ {
		if cs[k] < cs[best] {
			best = k
		}
	}
	return best
}

// msgCost is the virtual transfer time for one message of n bytes between
// distinct places. The chaos fields fold fault injection in expectation:
// drops multiply the cost by the expected retransmission count, duplicates
// burn extra bandwidth, and injected delay adds its mean.
func (s *Sim) msgCost(n int64) float64 {
	c := s.m.NetLatency + float64(n)/s.m.NetBandwidth
	if d := s.m.ChaosDropProb; d > 0 && d < 1 {
		c /= 1 - d
	}
	if s.m.ChaosDupProb > 0 {
		c += s.m.ChaosDupProb * float64(n) / s.m.NetBandwidth
	}
	return c + s.m.ChaosDelayMean
}

// computeCostAt is the per-vertex compute time at place p: the work
// itself plus the amortized scheduling overhead, times the heterogeneity
// multiplier.
func (s *Sim) computeCostAt(p int) float64 {
	c := s.m.ComputeCost
	if s.m.SchedCost > 0 {
		tile := s.m.TileSize
		if tile < 1 {
			tile = 1
		}
		c += s.m.SchedCost / float64(tile)
	}
	if f, ok := s.m.PlaceSpeed[p]; ok && f > 0 {
		return c * f
	}
	return c
}

// schedule assigns a ready vertex to a core — at its owner, or under the
// stealing model at whichever place finishes it earliest — charging fetch
// time for remote, uncached dependencies, and emits its finish event.
func (s *Sim) schedule(id dag.VertexID, readyAt float64) {
	owner := s.d.Place(id.I, id.J)
	p := owner
	if s.m.Steal {
		p = s.pickStealPlace(id, readyAt, owner)
	}
	var buf []dag.VertexID
	buf = s.pat.Dependencies(id.I, id.J, buf)
	fetch := 0.0
	if p != owner {
		// Stolen vertex: the thief returns the result to the owner.
		fetch += s.msgCost(s.m.FetchBytes)
		s.res.Messages++
		s.res.BytesMoved += s.m.FetchBytes
	}
	// Group remote uncached dependencies by owner: the engine issues one
	// batched fetch call per remote owner.
	var perOwner map[int]int64
	for _, dep := range buf {
		owner := s.d.Place(dep.I, dep.J)
		if owner == p {
			continue
		}
		if _, ok := s.caches[p].Get(dep); ok {
			s.res.CacheHits++
			continue
		}
		if perOwner == nil {
			perOwner = make(map[int]int64, 2)
		}
		perOwner[owner] += s.m.FetchBytes
		s.res.RemoteFetches++
		s.caches[p].Put(dep, struct{}{})
	}
	msgs := s.m.FetchMsgs
	if msgs < 1 {
		msgs = 1
	}
	for _, bytes := range perOwner {
		// Request/response serialized per owner; scattered dependencies
		// pay the latency once per message.
		fetch += float64(msgs)*s.m.NetLatency + float64(bytes)/s.m.NetBandwidth
		s.res.Messages += msgs
		s.res.BytesMoved += bytes
	}
	ci := s.popCoreIdx(p)
	start := readyAt
	if s.cores[p][ci] > start {
		start = s.cores[p][ci]
	}
	finish := start + fetch + s.computeCostAt(p)
	s.cores[p][ci] = finish
	s.busy[p] += finish - start
	s.push(finish, evFinish, id)
}

// pickStealPlace returns the place that completes the vertex earliest:
// the owner with its normal fetch cost, or a thief paying a full remote
// fetch of every dependency plus the result write-back.
func (s *Sim) pickStealPlace(id dag.VertexID, readyAt float64, owner int) int {
	var buf []dag.VertexID
	buf = s.pat.Dependencies(id.I, id.J, buf)
	ownerFetch := 0.0
	var perOwner map[int]int64
	for _, dep := range buf {
		o := s.d.Place(dep.I, dep.J)
		if o == owner {
			continue
		}
		if perOwner == nil {
			perOwner = make(map[int]int64, 2)
		}
		perOwner[o] += s.m.FetchBytes
	}
	for _, bytes := range perOwner {
		ownerFetch += s.msgCost(bytes)
	}
	// Thieves fetch every dependency (their cache holds nothing useful
	// for a one-off vertex) and return the result to the owner.
	thiefFetch := float64(len(buf))*0 + s.msgCost(s.m.FetchBytes*int64(len(buf))) + s.msgCost(s.m.FetchBytes)
	if len(buf) == 0 {
		thiefFetch = s.msgCost(s.m.FetchBytes)
	}

	bestPlace := owner
	bestFinish := s.coreStart(owner, readyAt) + ownerFetch + s.computeCostAt(owner)
	for q := range s.cores {
		if q == owner {
			continue
		}
		finish := s.coreStart(q, readyAt) + thiefFetch + s.computeCostAt(q)
		if finish < bestFinish-1e-15 {
			bestFinish, bestPlace = finish, q
		}
	}
	return bestPlace
}

// coreStart is the earliest time place p could start a vertex ready at
// readyAt.
func (s *Sim) coreStart(p int, readyAt float64) float64 {
	cs := s.cores[p]
	best := cs[0]
	for k := 1; k < len(cs); k++ {
		if cs[k] < best {
			best = cs[k]
		}
	}
	if best < readyAt {
		return readyAt
	}
	return best
}

// step processes one event; returns false when the queue is empty.
func (s *Sim) step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(event)
	s.now = ev.t
	switch ev.kind {
	case evFinish:
		lin := ev.id.Linear(s.w)
		if s.finished[lin] {
			panic(fmt.Sprintf("simcluster: vertex %v finished twice", ev.id))
		}
		s.finished[lin] = true
		s.done++
		s.res.ComputedCells++
		if s.finishAt != nil {
			s.finishAt[lin] = s.now
		}
		if s.now > s.res.Makespan {
			s.res.Makespan = s.now
		}
		p := s.d.Place(ev.id.I, ev.id.J)
		var buf []dag.VertexID
		buf = s.pat.AntiDependencies(ev.id.I, ev.id.J, buf)
		var perDest map[int][]dag.VertexID
		for _, a := range buf {
			q := s.d.Place(a.I, a.J)
			if q == p {
				s.push(s.now, evDecr, a)
				continue
			}
			if s.m.AggWindow > 0 {
				if perDest == nil {
					perDest = make(map[int][]dag.VertexID, 2)
				}
				perDest[q] = append(perDest[q], a)
				continue
			}
			s.res.Messages++
			s.res.BytesMoved += s.m.DecrBytes
			s.push(s.now+s.msgCost(s.m.DecrBytes), evDecr, a)
		}
		if perDest != nil {
			dests := make([]int, 0, len(perDest))
			for q := range perDest {
				dests = append(dests, q)
			}
			sort.Ints(dests) // keep event order deterministic
			for _, q := range dests {
				s.addToBatch(ev.id, p, q, perDest[q])
			}
		}
	case evBatchFlush:
		s.flushBatch(ev.batch, s.now)
	case evBatchApply:
		b := ev.batch
		for _, rec := range b.recs {
			if s.m.ValuePush {
				s.caches[b.dst].Put(rec.src, struct{}{})
			}
			for _, a := range rec.targets {
				// A recovery may have re-owned the target; stale arrivals
				// for cells this destination no longer owns are dropped,
				// like the engine's epoch check.
				if s.d.Place(a.I, a.J) != b.dst {
					continue
				}
				lin := a.Linear(s.w)
				s.indeg[lin]--
				if s.indeg[lin] < 0 {
					panic(fmt.Sprintf("simcluster: vertex %v indegree underflow", a))
				}
				if s.indeg[lin] == 0 && !s.finished[lin] {
					s.schedule(a, s.now)
				}
			}
		}
	case evDecr:
		lin := ev.id.Linear(s.w)
		s.indeg[lin]--
		if s.indeg[lin] < 0 {
			panic(fmt.Sprintf("simcluster: vertex %v indegree underflow", ev.id))
		}
		if s.indeg[lin] == 0 && !s.finished[lin] {
			s.schedule(ev.id, s.now)
		}
	}
	return true
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (Result, error) {
	for s.step() {
	}
	if s.done != s.active {
		return s.res, fmt.Errorf("simcluster: stalled at %d/%d vertices", s.done, s.active)
	}
	return s.res, nil
}

// RunUntil advances the simulation until `count` vertices have finished
// (or the event queue drains). It returns the number finished.
func (s *Sim) RunUntil(count int64) int64 {
	for s.done < count && s.step() {
	}
	return s.done
}

// Done returns the number of finished active vertices.
func (s *Sim) Done() int64 { return s.done }

// Active returns the number of active vertices.
func (s *Sim) Active() int64 { return s.active }

// Now returns the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// Utilization returns place p's cumulative core-busy time divided by its
// total core capacity over the run so far (makespan × cores) — the
// virtual-time analogue of trace.Collector.Utilization.
func (s *Sim) Utilization(p int) float64 {
	if s.res.Makespan <= 0 {
		return 0
	}
	cs, ok := s.cores[p]
	if !ok {
		return 0
	}
	return s.busy[p] / (s.res.Makespan * float64(len(cs)))
}

// FinishTime returns the recorded virtual finish time of a vertex; only
// meaningful when Model.TrackFinishTimes is set.
func (s *Sim) FinishTime(id dag.VertexID) float64 {
	if s.finishAt == nil {
		return 0
	}
	return s.finishAt[id.Linear(s.w)]
}
