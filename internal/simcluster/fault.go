package simcluster

import (
	"fmt"

	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/vcache"
)

// Fault kills place dead at the current virtual time and performs the
// paper's recovery (§VI-D) in the simulation:
//
//   - results finished on the dead place are lost;
//   - the distribution is restricted to the survivors;
//   - a finished vertex survives iff its owner is unchanged, unless
//     restoreRemote is set, in which case moved vertices are copied to
//     their new owners (charged to the network);
//   - indegrees of unfinished vertices are re-derived;
//   - in-flight work is discarded (recomputed after resume).
//
// The recovery itself runs in parallel across survivors: its duration is
// the maximum per-place scan cost plus the restore transfer time. Fault
// returns that duration; the simulation resumes at now + duration.
func (s *Sim) Fault(dead int, restoreRemote bool) (float64, error) {
	if dead == 0 {
		return 0, fmt.Errorf("simcluster: place 0 cannot be recovered (Resilient X10 limitation)")
	}
	if _, ok := s.cores[dead]; !ok {
		return 0, fmt.Errorf("simcluster: place %d not in the cluster (already dead?)", dead)
	}
	oldDist := s.d
	newDist, err := oldDist.Restrict(func(p int) bool { return p != dead })
	if err != nil {
		return 0, err
	}

	// Drop in-flight events and open aggregation buffers: paused
	// activities are recomputed, stale messages (flushed or still
	// buffered) are rejected by the engine's epoch check.
	s.events = s.events[:0]
	s.open = nil

	// Apply the keep/drop rule and account for restore traffic.
	var restoreBytes int64
	var maxCells int64
	perPlaceCells := make(map[int]int64)
	for i := int32(0); i < s.h; i++ {
		for j := int32(0); j < s.w; j++ {
			if !dag.IsActive(s.pat, i, j) {
				continue
			}
			lin := dag.VertexID{I: i, J: j}.Linear(s.w)
			newOwner := newDist.Place(i, j)
			perPlaceCells[newOwner]++
			if !s.finished[lin] {
				continue
			}
			oldOwner := oldDist.Place(i, j)
			switch {
			case oldOwner == dead:
				s.finished[lin] = false // lost with the place
				s.done--
			case oldOwner == newOwner:
				// kept in place
			case restoreRemote:
				restoreBytes += s.m.FetchBytes // copied to the new owner
			default:
				s.finished[lin] = false // dropped: cheaper to recompute
				s.done--
			}
		}
	}
	for _, c := range perPlaceCells {
		if c > maxCells {
			maxCells = c
		}
	}
	recovery := float64(maxCells) * s.m.RecoveryCellCost
	if restoreBytes > 0 {
		recovery += s.msgCost(restoreBytes)
		s.res.Messages++
		s.res.BytesMoved += restoreBytes
	}

	// Install the restricted distribution and fresh per-epoch state.
	s.d = newDist
	delete(s.cores, dead)
	delete(s.caches, dead)
	resumeAt := s.now + recovery
	for p := range s.cores {
		for k := range s.cores[p] {
			s.cores[p][k] = resumeAt
		}
		s.caches[p] = vcache.New[struct{}](s.m.CacheSize)
	}
	s.now = resumeAt
	s.res.RecoveryTime += recovery

	// Re-derive indegrees from the surviving finished set — for finished
	// vertices too: a kept vertex whose dependency was lost will absorb
	// that dependency's decrement when it is recomputed, exactly as the
	// real engine's chunks do.
	var buf []dag.VertexID
	for i := int32(0); i < s.h; i++ {
		for j := int32(0); j < s.w; j++ {
			if !dag.IsActive(s.pat, i, j) {
				continue
			}
			lin := dag.VertexID{I: i, J: j}.Linear(s.w)
			buf = s.pat.Dependencies(i, j, buf[:0])
			n := int32(0)
			for _, dep := range buf {
				if !s.finished[dep.Linear(s.w)] {
					n++
				}
			}
			s.indeg[lin] = n
		}
	}
	for i := int32(0); i < s.h; i++ {
		for j := int32(0); j < s.w; j++ {
			id := dag.VertexID{I: i, J: j}
			lin := id.Linear(s.w)
			if dag.IsActive(s.pat, i, j) && !s.finished[lin] && s.indeg[lin] == 0 {
				s.schedule(id, resumeAt)
			}
		}
	}
	return recovery, nil
}
