package simcluster

import (
	"math"
	"testing"

	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dag/patterns"
	"github.com/dpx10/dpx10/internal/dist"
)

func mustSim(t *testing.T, pat dag.Pattern, places int, m Model) *Sim {
	t.Helper()
	h, w := pat.Bounds()
	s, err := New(pat, dist.NewBlockRow(h, w, places), m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimCompletesAllPatterns(t *testing.T) {
	m := DefaultModel(2)
	pats := []dag.Pattern{
		patterns.NewGrid(30, 30),
		patterns.NewDiagonal(30, 30),
		patterns.NewInterval(25),
		patterns.NewRowWave(12, 12),
		patterns.NewColWave(12, 12),
		patterns.NewChain(8, 40),
		patterns.NewTriangle(16),
		patterns.NewBanded(30, 30, 4),
	}
	for _, pat := range pats {
		s := mustSim(t, pat, 4, m)
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%T: %v", pat, err)
		}
		if res.ComputedCells != s.Active() {
			t.Fatalf("%T: computed %d of %d cells", pat, res.ComputedCells, s.Active())
		}
		if res.Makespan <= 0 {
			t.Fatalf("%T: non-positive makespan", pat)
		}
	}
}

func TestSimCausality(t *testing.T) {
	// Property: every vertex finishes no earlier than each dependency's
	// finish time plus its own compute cost.
	m := DefaultModel(2)
	m.TrackFinishTimes = true
	pat := patterns.NewDiagonal(25, 31)
	s := mustSim(t, pat, 3, m)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf []dag.VertexID
	for i := int32(0); i < 25; i++ {
		for j := int32(0); j < 31; j++ {
			ft := s.FinishTime(dag.VertexID{I: i, J: j})
			buf = pat.Dependencies(i, j, buf[:0])
			for _, dep := range buf {
				if ft < s.FinishTime(dep)+m.ComputeCost-1e-12 {
					t.Fatalf("(%d,%d) finished at %g before dependency %v at %g + compute",
						i, j, ft, dep, s.FinishTime(dep))
				}
			}
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	m := DefaultModel(3)
	m.CacheSize = 16
	run := func() Result {
		s := mustSim(t, patterns.NewDiagonal(40, 40), 5, m)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same configuration, different results:\n%+v\n%+v", a, b)
	}
}

func TestSimMorePlacesFaster(t *testing.T) {
	// Fig 10 shape: adding places reduces the makespan of a large
	// wavefront, with diminishing returns.
	m := DefaultModel(2)
	pat := patterns.NewDiagonal(120, 120)
	t1 := runMakespan(t, pat, 1, m)
	t4 := runMakespan(t, pat, 4, m)
	t8 := runMakespan(t, pat, 8, m)
	if !(t4 < t1 && t8 < t4) {
		t.Fatalf("no speedup: t1=%g t4=%g t8=%g", t1, t4, t8)
	}
	sp4 := t1 / t4
	sp8 := t1 / t8
	if sp8 > 8 || sp4 > 4.0001 {
		t.Fatalf("superlinear speedup is a model bug: sp4=%.2f sp8=%.2f", sp4, sp8)
	}
	// Diminishing efficiency: doubling places less than doubles speedup.
	if sp8 >= 2*sp4 {
		t.Fatalf("no saturation: sp4=%.2f sp8=%.2f", sp4, sp8)
	}
}

func runMakespan(t *testing.T, pat dag.Pattern, places int, m Model) float64 {
	t.Helper()
	s := mustSim(t, pat, places, m)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

func TestSimLinearInSize(t *testing.T) {
	// Fig 11 shape: at fixed places, makespan grows linearly with the
	// vertex count once per-vertex work dominates message latency (the
	// paper's regime at 100M-1B vertices).
	m := DefaultModel(2)
	m.ComputeCost = 1e-4
	small := runMakespan(t, patterns.NewGrid(60, 60), 4, m)
	big := runMakespan(t, patterns.NewGrid(120, 120), 4, m) // 4x vertices
	ratio := big / small
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("4x vertices gave %.2fx makespan; expected ~4x", ratio)
	}
}

func TestSimCacheReducesTraffic(t *testing.T) {
	m := DefaultModel(2)
	pat := patterns.NewColWave(12, 24)
	s0 := mustSim(t, pat, 3, m)
	r0, err := s0.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.CacheSize = 64
	s1 := mustSim(t, pat, 3, m)
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHits == 0 || r1.RemoteFetches >= r0.RemoteFetches {
		t.Fatalf("cache ineffective: hits=%d fetches %d -> %d", r1.CacheHits, r0.RemoteFetches, r1.RemoteFetches)
	}
	if r1.Makespan > r0.Makespan {
		t.Fatalf("cache made the run slower: %g -> %g", r0.Makespan, r1.Makespan)
	}
}

func TestSimFaultRecovers(t *testing.T) {
	for _, restore := range []bool{false, true} {
		m := DefaultModel(2)
		pat := patterns.NewDiagonal(60, 60)
		s := mustSim(t, pat, 4, m)
		half := s.Active() / 2
		if got := s.RunUntil(half); got < half {
			t.Fatalf("stalled at %d/%d before fault", got, half)
		}
		rec, err := s.Fault(2, restore)
		if err != nil {
			t.Fatal(err)
		}
		if rec <= 0 {
			t.Fatal("zero recovery time")
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("restore=%v: %v", restore, err)
		}
		if res.ComputedCells <= s.Active() {
			t.Fatalf("restore=%v: no recomputation recorded (%d computed, %d active)",
				restore, res.ComputedCells, s.Active())
		}
		if res.RecoveryTime != rec {
			t.Fatalf("recovery time mismatch: %g vs %g", res.RecoveryTime, rec)
		}
	}
}

func TestSimRestoreRemoteRecomputesLess(t *testing.T) {
	run := func(restore bool) int64 {
		m := DefaultModel(2)
		s := mustSim(t, patterns.NewGrid(80, 80), 4, m)
		s.RunUntil(s.Active() / 2)
		if _, err := s.Fault(3, restore); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ComputedCells
	}
	drop := run(false)
	keep := run(true)
	if keep > drop {
		t.Fatalf("restore-remote recomputed more (%d) than drop (%d)", keep, drop)
	}
}

func TestSimRecoveryScalesDownWithPlaces(t *testing.T) {
	// Fig 13a shape: recovery on 8 places is about half of 4 places.
	rec := func(places int) float64 {
		m := DefaultModel(2)
		s := mustSim(t, patterns.NewDiagonal(96, 96), places, m)
		s.RunUntil(s.Active() / 2)
		r, err := s.Fault(places-1, false)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r4 := rec(4)
	r8 := rec(8)
	ratio := r4 / r8
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("recovery(4p)/recovery(8p) = %.2f, expected ~2", ratio)
	}
}

func TestSimRecoveryLinearInSize(t *testing.T) {
	rec := func(n int32) float64 {
		m := DefaultModel(2)
		s := mustSim(t, patterns.NewDiagonal(n, n), 4, m)
		s.RunUntil(s.Active() / 2)
		r, err := s.Fault(2, false)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small := rec(40)
	big := rec(80) // 4x cells
	if ratio := big / small; math.Abs(ratio-4) > 1.0 {
		t.Fatalf("4x cells gave %.2fx recovery time; expected ~4x", ratio)
	}
}

func TestSimFaultErrors(t *testing.T) {
	m := DefaultModel(2)
	s := mustSim(t, patterns.NewGrid(10, 10), 3, m)
	if _, err := s.Fault(0, false); err == nil {
		t.Fatal("killing place 0 accepted")
	}
	s.RunUntil(10)
	if _, err := s.Fault(2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fault(2, false); err == nil {
		t.Fatal("killing a dead place accepted")
	}
}

func TestSimRejectsBadModel(t *testing.T) {
	pat := patterns.NewGrid(4, 4)
	d := dist.NewBlockRow(4, 4, 2)
	m := DefaultModel(0)
	if _, err := New(pat, d, m); err == nil {
		t.Fatal("zero cores accepted")
	}
	m = DefaultModel(2)
	m.NetBandwidth = 0
	if _, err := New(pat, d, m); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := New(pat, dist.NewBlockRow(5, 5, 2), DefaultModel(2)); err == nil {
		t.Fatal("mismatched dist bounds accepted")
	}
}

func TestSimMoreCoresHelpWideDAG(t *testing.T) {
	pat := patterns.NewChain(64, 40) // 64 independent chains
	m1 := DefaultModel(1)
	m4 := DefaultModel(4)
	t1 := runMakespan(t, pat, 2, m1)
	t4 := runMakespan(t, pat, 2, m4)
	if t4 >= t1 {
		t.Fatalf("4 cores not faster than 1 on independent chains: %g vs %g", t4, t1)
	}
}

func TestSimUtilization(t *testing.T) {
	m := DefaultModel(2)
	m.ComputeCost = 1e-4
	s := mustSim(t, patterns.NewGrid(40, 40), 4, m)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		u := s.Utilization(p)
		if u <= 0 || u > 1.0001 {
			t.Fatalf("place %d utilization %f out of (0,1]", p, u)
		}
	}
	if s.Utilization(99) != 0 {
		t.Fatal("unknown place has nonzero utilization")
	}
}

func TestSimAggregationReducesTraffic(t *testing.T) {
	pat := patterns.NewColWave(16, 24)
	run := func(m Model) Result {
		s := mustSim(t, pat, 4, m)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ComputedCells != s.Active() {
			t.Fatalf("computed %d of %d cells", res.ComputedCells, s.Active())
		}
		return res
	}
	base := DefaultModel(2)
	base.CacheSize = 64

	off := run(base)
	agg := base
	agg.AggWindow = 5 * base.NetLatency
	onRes := run(agg)
	push := agg
	push.ValuePush = true
	pushRes := run(push)

	if off.AggBatches != 0 {
		t.Fatalf("no AggWindow but %d batches", off.AggBatches)
	}
	if onRes.AggBatches == 0 || onRes.Messages >= off.Messages {
		t.Fatalf("aggregation ineffective: batches=%d messages %d -> %d",
			onRes.AggBatches, off.Messages, onRes.Messages)
	}
	if pushRes.RemoteFetches*2 > off.RemoteFetches {
		t.Fatalf("value push did not halve fetches: %d -> %d",
			off.RemoteFetches, pushRes.RemoteFetches)
	}
	// The pushed values still count as moved bytes, just on fewer messages.
	if pushRes.BytesMoved == 0 || pushRes.Messages >= off.Messages {
		t.Fatalf("push arm accounting off: %+v", pushRes)
	}
	// Determinism must survive the extra event kinds.
	if again := run(push); again != pushRes {
		t.Fatalf("aggregated run nondeterministic:\n%+v\n%+v", pushRes, again)
	}
}

func TestSimAggregationSurvivesFault(t *testing.T) {
	m := DefaultModel(2)
	m.CacheSize = 64
	m.AggWindow = 5 * m.NetLatency
	m.ValuePush = true
	s := mustSim(t, patterns.NewDiagonal(60, 60), 4, m)
	half := s.Active() / 2
	if got := s.RunUntil(half); got < half {
		t.Fatalf("stalled at %d/%d before fault", got, half)
	}
	if _, err := s.Fault(2, false); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputedCells <= s.Active() {
		t.Fatalf("no recomputation recorded (%d computed, %d active)",
			res.ComputedCells, s.Active())
	}
}

func TestSimChaosInflatesMakespan(t *testing.T) {
	// The chaos arm is an expectation model over message costs only: drops
	// scale transfer cost by expected retransmissions, duplicates burn
	// bandwidth, injected delay adds latency. None of it changes what is
	// computed or fetched — only when.
	pat := patterns.NewDiagonal(40, 40)
	run := func(m Model) Result {
		s := mustSim(t, pat, 4, m)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	calm := run(DefaultModel(2))
	stormy := DefaultModel(2)
	stormy.ChaosDropProb = 0.2
	stormy.ChaosDupProb = 0.1
	stormy.ChaosDelayMean = 5 * stormy.NetLatency
	chaos := run(stormy)
	if chaos.Makespan <= calm.Makespan {
		t.Fatalf("chaos makespan %g not above fault-free %g", chaos.Makespan, calm.Makespan)
	}
	if chaos.ComputedCells != calm.ComputedCells || chaos.RemoteFetches != calm.RemoteFetches {
		t.Fatalf("chaos model changed semantics: %+v vs %+v", chaos, calm)
	}
	// Severity is monotone: a harsher plan costs at least as much.
	harsher := stormy
	harsher.ChaosDropProb = 0.5
	if worse := run(harsher); worse.Makespan < chaos.Makespan {
		t.Fatalf("drop 0.5 makespan %g below drop 0.2 makespan %g", worse.Makespan, chaos.Makespan)
	}
}
