package simcluster

import (
	"testing"

	"github.com/dpx10/dpx10/internal/leakcheck"
)

// TestMain fails the package if simulated places leave goroutines behind.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
