package simcluster

import (
	"testing"

	"github.com/dpx10/dpx10/internal/dag/patterns"
	"github.com/dpx10/dpx10/internal/dist"
)

func TestSimStealCompletesAndHelpsImbalance(t *testing.T) {
	// Triangle under blockrow is imbalanced: stealing should cut the
	// makespan when compute dominates communication.
	pat := patterns.NewTriangle(48)
	m := DefaultModel(2)
	m.ComputeCost = 1e-4
	base := runMakespan(t, pat, 6, m)
	m.Steal = true
	stolen := runMakespan(t, pat, 6, m)
	if stolen >= base {
		t.Fatalf("steal did not help an imbalanced DAG: %g vs %g", stolen, base)
	}
	// And it must still compute every vertex exactly once.
	h, w := pat.Bounds()
	sim, err := New(pat, dist.NewBlockRow(h, w, 6), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputedCells != sim.Active() {
		t.Fatalf("computed %d of %d", res.ComputedCells, sim.Active())
	}
}

func TestSimStealNoWorseOnBalanced(t *testing.T) {
	pat := patterns.NewGrid(80, 80)
	m := DefaultModel(2)
	m.ComputeCost = 1e-4
	base := runMakespan(t, pat, 4, m)
	m.Steal = true
	stolen := runMakespan(t, pat, 4, m)
	if stolen > base*1.1 {
		t.Fatalf("steal hurt a balanced DAG badly: %g vs %g", stolen, base)
	}
}
