// Package workload generates the deterministic synthetic inputs used by
// the test suite and the benchmark harness.
//
// The paper evaluates on sized inputs whose content is irrelevant to the
// DAG structure (sequences for alignment, edge weights for Manhattan
// Tourists, item weights/values for knapsack). These generators are
// seeded and pure, so a run is reproducible bit-for-bit and the serial
// references compute over exactly the same data as the distributed runs.
package workload

import "math/rand"

// DNA is the nucleotide alphabet used by the alignment workloads.
const DNA = "ACGT"

// Sequence returns a pseudo-random string of length n over alphabet.
func Sequence(n int, alphabet string, seed int64) string {
	if n <= 0 {
		return ""
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// Ints returns n pseudo-random int32 values in [1, maxVal].
func Ints(n int, maxVal int32, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = rng.Int31n(maxVal) + 1
	}
	return out
}

// splitmix64 is a strong 64-bit mixer; it lets grid-sized weight functions
// be pure functions of coordinates instead of materialized arrays.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes a coordinate pair and a seed into a uniform uint64.
func Hash2(i, j int32, seed int64) uint64 {
	return splitmix64(uint64(seed)<<32 ^ uint64(uint32(i))<<32 ^ uint64(uint32(j)))
}

// Spin burns approximately n iterations of integer work and returns a
// value that depends on them, preventing dead-code elimination. The
// overhead experiment uses it to dial the per-cell compute cost up to the
// level of the paper's X10 runtime (where each activity costs on the
// order of a microsecond).
func Spin(n int) uint64 {
	x := uint64(n) | 1
	for k := 0; k < n; k++ {
		x = splitmix64(x)
	}
	return x
}

// EdgeWeight is a deterministic weight in [0, maxW) for the grid edge
// from (i1,j1) to (i2,j2) — the w(i1,j1,i2,j2) of the Manhattan Tourists
// recurrence, computable at any scale without storing the grid.
func EdgeWeight(i1, j1, i2, j2 int32, maxW int64, seed int64) int64 {
	h := splitmix64(Hash2(i1, j1, seed) ^ Hash2(i2, j2, ^seed))
	return int64(h % uint64(maxW))
}

// Mutate returns a copy of seq with approximately rate×len point
// mutations (substitutions, single-character insertions and deletions in
// equal proportion), deterministic in seed. Alignment demos use it to
// derive realistically similar sequence pairs, which produce long local
// alignments instead of the short matches two independent random
// sequences share.
func Mutate(seq, alphabet string, rate float64, seed int64) string {
	if rate <= 0 || len(seq) == 0 {
		return seq
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, len(seq)+8)
	for k := 0; k < len(seq); k++ {
		if rng.Float64() >= rate {
			out = append(out, seq[k])
			continue
		}
		switch rng.Intn(3) {
		case 0: // substitution
			out = append(out, alphabet[rng.Intn(len(alphabet))])
		case 1: // insertion
			out = append(out, alphabet[rng.Intn(len(alphabet))], seq[k])
		default: // deletion: skip the character
		}
	}
	if len(out) == 0 {
		return string(seq[0])
	}
	return string(out)
}
