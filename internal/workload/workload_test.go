package workload

import (
	"strings"
	"testing"
)

func TestSequenceDeterministic(t *testing.T) {
	a := Sequence(100, DNA, 7)
	b := Sequence(100, DNA, 7)
	if a != b {
		t.Fatal("same seed produced different sequences")
	}
	if c := Sequence(100, DNA, 8); c == a {
		t.Fatal("different seeds produced identical sequences")
	}
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for _, ch := range a {
		if !strings.ContainsRune(DNA, ch) {
			t.Fatalf("character %q outside alphabet", ch)
		}
	}
	if Sequence(0, DNA, 1) != "" || Sequence(-3, DNA, 1) != "" {
		t.Fatal("non-positive length should give empty string")
	}
}

func TestIntsRange(t *testing.T) {
	vals := Ints(500, 10, 3)
	if len(vals) != 500 {
		t.Fatalf("len = %d", len(vals))
	}
	seen := map[int32]bool{}
	for _, v := range vals {
		if v < 1 || v > 10 {
			t.Fatalf("value %d out of [1,10]", v)
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct values in 500 draws", len(seen))
	}
}

func TestEdgeWeightProperties(t *testing.T) {
	// Deterministic, bounded, and not constant.
	w1 := EdgeWeight(1, 2, 1, 3, 100, 42)
	if w2 := EdgeWeight(1, 2, 1, 3, 100, 42); w1 != w2 {
		t.Fatal("EdgeWeight not deterministic")
	}
	distinct := map[int64]bool{}
	for i := int32(0); i < 20; i++ {
		for j := int32(0); j < 20; j++ {
			w := EdgeWeight(i, j, i+1, j, 100, 42)
			if w < 0 || w >= 100 {
				t.Fatalf("weight %d out of [0,100)", w)
			}
			distinct[w] = true
		}
	}
	if len(distinct) < 30 {
		t.Fatalf("weights look degenerate: %d distinct of 400", len(distinct))
	}
	if EdgeWeight(1, 2, 1, 3, 100, 42) == EdgeWeight(1, 2, 1, 3, 100, 43) &&
		EdgeWeight(5, 5, 6, 5, 100, 42) == EdgeWeight(5, 5, 6, 5, 100, 43) {
		t.Fatal("seed has no effect on weights")
	}
}

func TestHash2Spread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int32(0); i < 64; i++ {
		for j := int32(0); j < 64; j++ {
			seen[Hash2(i, j, 1)] = true
		}
	}
	if len(seen) != 64*64 {
		t.Fatalf("Hash2 collisions: %d distinct of %d", len(seen), 64*64)
	}
}

func TestReadFASTA(t *testing.T) {
	in := strings.NewReader(`>seq1 human sample
ACGT
acgt

>seq2 ignored
TTTT
`)
	name, seq, err := ReadFASTA(in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "seq1 human sample" {
		t.Fatalf("name = %q", name)
	}
	if seq != "ACGTACGT" {
		t.Fatalf("seq = %q", seq)
	}
}

func TestReadFASTAPlainText(t *testing.T) {
	name, seq, err := ReadFASTA(strings.NewReader("acgt\ngatt\n"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "" || seq != "ACGTGATT" {
		t.Fatalf("got (%q, %q)", name, seq)
	}
}

func TestReadFASTAEmpty(t *testing.T) {
	if _, _, err := ReadFASTA(strings.NewReader(">header only\n")); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadFASTAComments(t *testing.T) {
	_, seq, err := ReadFASTA(strings.NewReader("; legacy comment\nAC\n;mid\nGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != "ACGT" {
		t.Fatalf("seq = %q", seq)
	}
}

func TestMutate(t *testing.T) {
	seq := Sequence(400, DNA, 1)
	mut := Mutate(seq, DNA, 0.1, 2)
	if mut == seq {
		t.Fatal("10% mutation changed nothing")
	}
	if Mutate(seq, DNA, 0.1, 2) != mut {
		t.Fatal("Mutate not deterministic")
	}
	if Mutate(seq, DNA, 0, 2) != seq {
		t.Fatal("zero rate must be identity")
	}
	// Length stays in the same ballpark (ins/del balance).
	if len(mut) < 300 || len(mut) > 500 {
		t.Fatalf("mutated length %d drifted too far from 400", len(mut))
	}
	// High similarity: the LCS-like shared content should dominate.
	same := 0
	for k := 0; k < len(seq) && k < len(mut); k++ {
		if seq[k] == mut[k] {
			same++
		}
	}
	if same < len(seq)/4 {
		t.Fatalf("mutant shares only %d/%d positions; mutation too destructive", same, len(seq))
	}
}

func TestMutateEmptyAndTiny(t *testing.T) {
	if Mutate("", DNA, 0.5, 1) != "" {
		t.Fatal("empty input changed")
	}
	if got := Mutate("A", DNA, 1.0, 1); got == "" {
		t.Fatal("mutation erased the entire sequence")
	}
}
