package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadFASTA parses the first sequence of a FASTA stream (or, for plain
// text without a header, the concatenation of all non-empty lines).
// Whitespace is stripped and letters are uppercased; the sequence content
// never changes the DAG, so no alphabet check is imposed.
func ReadFASTA(r io.Reader) (name, seq string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var sb strings.Builder
	started := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			if started {
				break // next record: first sequence is complete
			}
			name = strings.TrimSpace(line[1:])
			started = true
			continue
		}
		if strings.HasPrefix(line, ";") {
			continue // legacy FASTA comment
		}
		started = true
		sb.WriteString(strings.ToUpper(line))
	}
	if err := sc.Err(); err != nil {
		return "", "", fmt.Errorf("workload: reading sequence: %w", err)
	}
	if sb.Len() == 0 {
		return "", "", fmt.Errorf("workload: no sequence data found")
	}
	return name, sb.String(), nil
}

// ReadFASTAFile reads the first sequence of a FASTA (or plain text) file.
func ReadFASTAFile(path string) (name, seq string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", "", err
	}
	defer f.Close()
	return ReadFASTA(f)
}
