package trace

import "testing"

func TestKindName(t *testing.T) {
	if got := KindName(1); got != "fetch" {
		t.Errorf("KindName(1) = %q, want %q", got, "fetch")
	}
	if got := KindName(20); got != "decrBatch" {
		t.Errorf("KindName(20) = %q, want %q", got, "decrBatch")
	}
	if got := KindName(0); got != "kind0" {
		t.Errorf("KindName(0) = %q, want %q", got, "kind0")
	}
	if got := KindName(99); got != "kind99" {
		t.Errorf("KindName(99) = %q, want %q", got, "kind99")
	}
}

func TestKindNamesDistinct(t *testing.T) {
	seen := map[string]uint8{}
	for v, n := range kindNames {
		if prev, dup := seen[n]; dup {
			t.Errorf("kindNames value %q used by both %d and %d", n, prev, v)
		}
		seen[n] = v
	}
}
