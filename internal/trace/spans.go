package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one named interval on a (place, lane) timeline: a tile
// execution, a steal round-trip, a recovery phase or a whole epoch.
type Span struct {
	Name  string
	Place int // Chrome trace pid
	Lane  int // Chrome trace tid: worker index, or a reserved lane
	Start time.Duration
	Dur   time.Duration
}

// Reserved lanes for spans that do not belong to a worker goroutine.
const (
	LaneCoordinator = 100 // epoch + recovery-phase spans
	LaneHandler     = 101 // spans recorded from message handlers
)

// SpanLog is a bounded, concurrency-safe collection of Spans. All
// timestamps are relative to the log's creation so traces start at zero.
// Once max spans are recorded further Adds are counted but dropped —
// tracing a huge run degrades, it never OOMs.
type SpanLog struct {
	t0  time.Time
	max int

	mu      sync.Mutex
	spans   []Span
	dropped int64
}

// DefaultMaxSpans bounds a span log when the caller does not choose:
// enough for every tile of a mid-size run plus recovery activity.
const DefaultMaxSpans = 1 << 20

// NewSpanLog creates a log keeping at most max spans (<=0 selects
// DefaultMaxSpans).
func NewSpanLog(max int) *SpanLog {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &SpanLog{t0: time.Now(), max: max}
}

// Start returns the current instant for a later Add call. It exists so
// callers do not need to import time for the common pattern.
func (l *SpanLog) Start() time.Time {
	return time.Now()
}

// Add records one span that began at start and just ended. A nil log is
// a no-op, so call sites can be wired unconditionally.
func (l *SpanLog) Add(name string, place, lane int, start time.Time) {
	if l == nil {
		return
	}
	end := time.Now()
	l.mu.Lock()
	if len(l.spans) >= l.max {
		l.dropped++
	} else {
		l.spans = append(l.spans, Span{
			Name:  name,
			Place: place,
			Lane:  lane,
			Start: start.Sub(l.t0),
			Dur:   end.Sub(start),
		})
	}
	l.mu.Unlock()
}

// Len returns the number of recorded spans.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Dropped returns how many spans were discarded after the log filled.
func (l *SpanLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Spans returns the recorded spans sorted by start time.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	l.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// WriteChromeTrace renders the spans in the Chrome trace-event JSON
// format (chrome://tracing, https://ui.perfetto.dev): places appear as
// processes, workers and the reserved lanes as threads.
func (l *SpanLog) WriteChromeTrace(w io.Writer) error {
	spans := l.Spans()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for k, sp := range spans {
		sep := ","
		if k == len(spans)-1 {
			sep = ""
		}
		// ts/dur are microseconds in the trace-event format.
		_, err := fmt.Fprintf(w,
			"  {\"name\":%q,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}%s\n",
			sp.Name, sp.Place, sp.Lane,
			float64(sp.Start)/1e3, float64(sp.Dur)/1e3, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
