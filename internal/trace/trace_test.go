package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndUtilization(t *testing.T) {
	c := New(3, 0)
	base := time.Now()
	c.RecordCompute(0, 1, 2, base, 10*time.Millisecond)
	c.RecordCompute(0, 1, 3, base, 30*time.Millisecond)
	c.RecordCompute(2, 5, 5, base, 20*time.Millisecond)
	c.AddFetchWait(0, 5*time.Millisecond)

	if got := c.Vertices(0); got != 2 {
		t.Fatalf("Vertices(0) = %d", got)
	}
	if got := c.BusyTime(0); got != 40*time.Millisecond {
		t.Fatalf("BusyTime(0) = %v", got)
	}
	if got := c.FetchWait(0); got != 5*time.Millisecond {
		t.Fatalf("FetchWait(0) = %v", got)
	}
	// 40ms busy over 100ms elapsed on 2 threads = 20%.
	if got := c.Utilization(0, 100*time.Millisecond, 2); got < 0.19 || got > 0.21 {
		t.Fatalf("Utilization = %f", got)
	}
	if got := c.Utilization(0, 0, 2); got != 0 {
		t.Fatalf("zero-elapsed utilization = %f", got)
	}
}

func TestImbalance(t *testing.T) {
	c := New(4, 0)
	if got := c.Imbalance(); got != 1 {
		t.Fatalf("empty collector imbalance = %f", got)
	}
	base := time.Now()
	// 6 vertices on place 0, 2 on place 1, none elsewhere: mean 2, max 6.
	for k := 0; k < 6; k++ {
		c.RecordCompute(0, 0, int32(k), base, time.Millisecond)
	}
	c.RecordCompute(1, 1, 0, base, time.Millisecond)
	c.RecordCompute(1, 1, 1, base, time.Millisecond)
	if got := c.Imbalance(); got < 2.9 || got > 3.1 {
		t.Fatalf("imbalance = %f, want 3", got)
	}
}

func TestEventTimelineBoundedAndSorted(t *testing.T) {
	c := New(2, 3)
	base := time.Now()
	for k := 4; k >= 0; k-- {
		c.RecordCompute(0, int32(k), 0, base.Add(time.Duration(k)*time.Millisecond), time.Millisecond)
	}
	ev := c.Events()
	if len(ev) != 3 {
		t.Fatalf("%d events kept, cap 3", len(ev))
	}
	for k := 1; k < len(ev); k++ {
		if ev[k].Start < ev[k-1].Start {
			t.Fatal("events not sorted by start time")
		}
	}
}

func TestOutOfRangePlaceIgnored(t *testing.T) {
	c := New(1, 0)
	c.RecordCompute(5, 0, 0, time.Now(), time.Millisecond) // must not panic
	c.AddFetchWait(-1, time.Millisecond)
	if c.Vertices(0) != 0 {
		t.Fatal("out-of-range record leaked into place 0")
	}
}

func TestSummaryFormat(t *testing.T) {
	c := New(2, 0)
	c.RecordCompute(1, 0, 0, time.Now(), 2*time.Millisecond)
	s := c.Summary(10*time.Millisecond, 1)
	if !strings.Contains(s, "place 0") || !strings.Contains(s, "place 1") {
		t.Fatalf("summary missing places:\n%s", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New(4, 100)
	var wg sync.WaitGroup
	base := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				c.RecordCompute(g%4, int32(g), int32(k), base, time.Microsecond)
				c.AddFetchWait(g%4, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for p := 0; p < 4; p++ {
		total += c.Vertices(p)
	}
	if total != 8*200 {
		t.Fatalf("recorded %d vertices, want 1600", total)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := New(2, 10)
	base := time.Now()
	c.RecordCompute(0, 1, 2, base, 3*time.Millisecond)
	c.RecordCompute(1, 4, 5, base.Add(time.Millisecond), 2*time.Millisecond)
	var buf strings.Builder
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(parsed) != 2 {
		t.Fatalf("%d events, want 2", len(parsed))
	}
	if parsed[0]["name"] != "(1,2)" || parsed[0]["ph"] != "X" {
		t.Fatalf("first event = %v", parsed[0])
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	c := New(1, 5)
	var buf strings.Builder
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []any
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil || len(parsed) != 0 {
		t.Fatalf("empty trace invalid: %v", err)
	}
}
