package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLogRecordsAndSorts(t *testing.T) {
	l := NewSpanLog(10)
	later := l.Start()
	l.Add("tile", 1, 2, later)
	l.Add("epoch 0", 0, LaneCoordinator, l.t0)
	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("len = %d, want 2", len(spans))
	}
	if spans[0].Name != "epoch 0" {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
	if spans[1].Place != 1 || spans[1].Lane != 2 {
		t.Fatalf("span lanes wrong: %+v", spans[1])
	}
}

func TestSpanLogBounded(t *testing.T) {
	l := NewSpanLog(3)
	at := time.Now()
	for i := 0; i < 5; i++ {
		l.Add("s", 0, 0, at)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
}

func TestSpanLogNilNoop(t *testing.T) {
	var l *SpanLog
	l.Add("x", 0, 0, time.Now())
	if l.Len() != 0 || l.Dropped() != 0 || l.Spans() != nil {
		t.Fatal("nil SpanLog not inert")
	}
}

func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Add("tile", w, i%4, l.Start())
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", l.Len())
	}
}

// TestSpanChromeTrace checks the output is valid JSON in the trace-event
// array shape with the fields Perfetto needs.
func TestSpanChromeTrace(t *testing.T) {
	l := NewSpanLog(10)
	start := l.Start()
	time.Sleep(time.Millisecond)
	l.Add("recovery:pause", 0, LaneCoordinator, start)
	l.Add(`tile "x"`, 1, 3, start) // name quoting must survive
	var sb strings.Builder
	if err := l.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		for _, field := range []string{"name", "ph", "pid", "tid", "ts", "dur"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("ph = %v, want X", ev["ph"])
		}
	}
}
