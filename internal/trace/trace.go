// Package trace collects per-place execution telemetry from a DPX10 run:
// busy time, vertex counts and an optional bounded event timeline. The
// scheduling experiments use it to report utilization and load imbalance —
// the quantities behind the paper's Figure 10 discussion of why the
// wavefront saturates and why 0/1KP scales worse.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector accumulates telemetry for one run. All methods are safe for
// concurrent use; the hot path is two atomic adds per vertex.
type Collector struct {
	places []placeTrace

	mu       sync.Mutex
	events   []Event
	maxEvent int
}

type placeTrace struct {
	busyNanos  atomic.Int64
	vertices   atomic.Int64
	fetchWait  atomic.Int64
	aggBatches atomic.Int64
	aggRecords atomic.Int64
	pushHits   atomic.Int64
}

// Event is one recorded vertex execution.
type Event struct {
	Place    int
	I, J     int32
	Start    time.Duration // since collector creation
	Duration time.Duration
}

// New creates a collector for `places` places keeping at most maxEvents
// timeline events (0 disables the timeline; counters always work).
func New(places, maxEvents int) *Collector {
	return &Collector{
		places:   make([]placeTrace, places),
		maxEvent: maxEvents,
	}
}

// RecordCompute accounts one vertex execution at place p.
func (c *Collector) RecordCompute(p int, i, j int32, start time.Time, d time.Duration) {
	if p < 0 || p >= len(c.places) {
		return
	}
	pt := &c.places[p]
	pt.busyNanos.Add(int64(d))
	pt.vertices.Add(1)
	if c.maxEvent > 0 {
		c.mu.Lock()
		if len(c.events) < c.maxEvent {
			c.events = append(c.events, Event{
				Place: p, I: i, J: j,
				Start:    time.Duration(start.UnixNano()),
				Duration: d,
			})
		}
		c.mu.Unlock()
	}
}

// AddFetchWait accounts time place p's workers spent blocked on remote
// dependency fetches.
func (c *Collector) AddFetchWait(p int, d time.Duration) {
	if p >= 0 && p < len(c.places) {
		c.places[p].fetchWait.Add(int64(d))
	}
}

// AddAggFlush accounts one aggregated decrement batch of `records`
// records flushed by place p.
func (c *Collector) AddAggFlush(p int, records int64) {
	if p >= 0 && p < len(c.places) {
		c.places[p].aggBatches.Add(1)
		c.places[p].aggRecords.Add(records)
	}
}

// AddPushHit accounts one dependency read at place p served by a
// sender-pushed cached value (a fetch round-trip avoided).
func (c *Collector) AddPushHit(p int) {
	if p >= 0 && p < len(c.places) {
		c.places[p].pushHits.Add(1)
	}
}

// AggBatches returns the aggregated batches place p flushed.
func (c *Collector) AggBatches(p int) int64 { return c.places[p].aggBatches.Load() }

// AggRecords returns the decrement records place p's batches carried.
func (c *Collector) AggRecords(p int) int64 { return c.places[p].aggRecords.Load() }

// PushHits returns place p's dependency reads served by pushed values.
func (c *Collector) PushHits(p int) int64 { return c.places[p].pushHits.Load() }

// BusyTime returns the cumulative compute time at place p.
func (c *Collector) BusyTime(p int) time.Duration {
	return time.Duration(c.places[p].busyNanos.Load())
}

// Vertices returns the number of vertices place p executed.
func (c *Collector) Vertices(p int) int64 {
	return c.places[p].vertices.Load()
}

// FetchWait returns the cumulative time place p's workers spent blocked
// on remote dependency fetches.
func (c *Collector) FetchWait(p int) time.Duration {
	return time.Duration(c.places[p].fetchWait.Load())
}

// Utilization returns busy time at place p divided by elapsed × threads —
// the fraction of the place's core capacity that did vertex work.
func (c *Collector) Utilization(p int, elapsed time.Duration, threads int) float64 {
	if elapsed <= 0 || threads <= 0 {
		return 0
	}
	return float64(c.BusyTime(p)) / (float64(elapsed) * float64(threads))
}

// Imbalance returns max/mean of per-place executed-vertex counts — 1.0 is
// perfectly balanced. Places that executed nothing still count toward the
// mean.
func (c *Collector) Imbalance() float64 {
	if len(c.places) == 0 {
		return 1
	}
	var sum, max int64
	for p := range c.places {
		v := c.places[p].vertices.Load()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(c.places))
	return float64(max) / mean
}

// Events returns the recorded timeline sorted by start time.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	c.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Summary renders one line per place.
func (c *Collector) Summary(elapsed time.Duration, threads int) string {
	out := ""
	for p := range c.places {
		out += fmt.Sprintf("place %d: %6d vertices, busy %8.3fms, util %5.1f%%, fetch-wait %8.3fms\n",
			p, c.Vertices(p), c.BusyTime(p).Seconds()*1e3,
			100*c.Utilization(p, elapsed, threads), c.FetchWait(p).Seconds()*1e3)
	}
	return out
}

// WriteChromeTrace renders the recorded timeline in the Chrome trace-event
// JSON format (load via chrome://tracing or https://ui.perfetto.dev): one
// complete event per vertex, with places as processes. Only meaningful
// when the collector was created with maxEvents > 0.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for k, ev := range events {
		sep := ","
		if k == len(events)-1 {
			sep = ""
		}
		// ts/dur are microseconds in the trace-event format.
		_, err := fmt.Fprintf(w,
			"  {\"name\":\"(%d,%d)\",\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f}%s\n",
			ev.I, ev.J, ev.Place,
			float64(ev.Start)/1e3, float64(ev.Duration)/1e3, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
