package trace

import "fmt"

// kindNames maps wire-protocol kind values (internal/core's kind*
// constants) to the names used in trace output and debug logs. The kind
// constants are unexported, so this table is keyed by value — and that is
// safe because dpx10-vet's protokind analyzer cross-checks it against the
// constant block: a missing, misnamed or stale entry fails `make vet`.
var kindNames = map[uint8]string{
	1:  "fetch",
	2:  "decrement",
	3:  "exec",
	4:  "placeDone",
	5:  "fault",
	6:  "pause",
	7:  "rebuild",
	8:  "restore",
	9:  "restoreTx",
	10: "replay",
	11: "replayTx",
	12: "resume",
	13: "stop",
	14: "readVal",
	15: "ping",
	16: "hello",
	17: "begin",
	18: "steal",
	19: "stealDone",
	20: "decrBatch",
	21: "stats",
	22: "lifelineDeliver",
}

// KindName returns the human-readable name of a wire-protocol message
// kind, or "kind<N>" for values outside the protocol.
func KindName(k uint8) string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind%d", k)
}
