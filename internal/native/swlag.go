// Package native is the hand-written baseline of the paper's overhead
// experiment (§VIII-B, Figure 12): "we implemented the SWLAG algorithm
// with native X10 and compared it with DPX10's implementation".
//
// It computes the same Gotoh scoring matrices as apps.SWLAG without any
// framework machinery — no generic pattern, no per-vertex indegrees, no
// ready lists. Places own contiguous row blocks; each place computes its
// block in column strips and pipelines each finished strip of its last row
// to the next place over a channel, the way a performance-minded X10
// programmer would structure the wavefront with at/async.
//
// Two variants are provided:
//
//   - RunStrip: the tiled pipeline just described — the tightest
//     hand-coding, which brackets DPX10's overhead from below.
//   - RunVertex: a per-vertex wavefront with atomic row-progress
//     counters, hand-specialized but at the framework's granularity —
//     the closer analogue of the paper's native X10 implementation.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/dpx10/dpx10/internal/workload"
)

// workSink keeps synthetic per-cell work observable to the compiler;
// atomic because the baselines run cells concurrently.
var workSink atomic.Uint64

// Scoring mirrors apps.SWLAG's parameters.
type Scoring struct {
	Match, Mismatch, GapOpen, GapExtend int32
}

// DefaultScoring is the evaluation scoring (match +2, mismatch -1,
// open -2, extend -1).
func DefaultScoring() Scoring {
	return Scoring{Match: 2, Mismatch: -1, GapOpen: -2, GapExtend: -1}
}

const negInf int32 = -(1 << 28)

type cell struct{ h, e, f int32 }

// Result reports what the native run computed.
type Result struct {
	BestH int32 // maximum local-alignment score
	Cells int64 // matrix cells computed
}

// blockStarts mirrors the balanced row partition the framework uses.
func blockStarts(total, n int) []int {
	starts := make([]int, n+1)
	for k := 0; k <= n; k++ {
		starts[k] = k * total / n
	}
	return starts
}

// RunStrip executes the strip-pipelined hand-written SWLAG across
// `places` simulated places with strips of stripW columns.
// work adds the same synthetic per-cell work the framework side uses in
// the overhead experiment (0 = the paper's plain SWLAG).
func RunStrip(a, b string, places, stripW int, work int) (Result, error) {
	if places < 1 {
		return Result{}, fmt.Errorf("native: places = %d", places)
	}
	if stripW < 1 {
		stripW = 256
	}
	sc := DefaultScoring()
	h := len(a) + 1 // rows
	w := len(b) + 1 // columns
	starts := blockStarts(h, places)

	// boundary[p] carries finished strips of place p's last row to p+1.
	type strip struct {
		lo, hi int // column range [lo, hi)
		cells  []cell
	}
	boundaries := make([]chan strip, places)
	for p := range boundaries {
		boundaries[p] = make(chan strip, 4)
	}

	var wg sync.WaitGroup
	results := make([]int32, places)
	var cells atomic.Int64
	for p := 0; p < places; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r0, r1 := starts[p], starts[p+1]
			if r0 == r1 {
				// A place with no rows forwards its predecessor's boundary
				// strips unchanged so the pipeline stays connected.
				if p > 0 {
					for sg := range boundaries[p-1] {
						if p < places-1 {
							boundaries[p] <- sg
						}
					}
				}
				close(boundaries[p])
				return
			}
			nRows := r1 - r0
			rows := make([][]cell, nRows)
			for i := range rows {
				rows[i] = make([]cell, w)
			}
			ghost := make([]cell, w) // global row r0-1
			best := int32(0)
			for lo := 0; lo < w; lo += stripW {
				hi := lo + stripW
				if hi > w {
					hi = w
				}
				if p > 0 && r0 > 0 {
					sg, ok := <-boundaries[p-1]
					if !ok || sg.lo != lo || sg.hi != hi {
						panic("native: boundary strip out of order")
					}
					copy(ghost[lo:hi], sg.cells)
				}
				for li := 0; li < nRows; li++ {
					gi := r0 + li
					prev := ghost
					if li > 0 {
						prev = rows[li-1]
					}
					row := rows[li]
					for j := lo; j < hi; j++ {
						if work > 0 {
							workSink.Store(workload.Spin(work))
						}
						if gi == 0 || j == 0 {
							row[j] = cell{h: 0, e: negInf, f: negInf}
							continue
						}
						left := row[j-1]
						top := prev[j]
						diag := prev[j-1]
						e := max2(left.h+sc.GapOpen, left.e+sc.GapExtend)
						f := max2(top.h+sc.GapOpen, top.f+sc.GapExtend)
						s := sc.Mismatch
						if a[gi-1] == b[j-1] {
							s = sc.Match
						}
						hv := max2(0, max2(diag.h+s, max2(e, f)))
						row[j] = cell{h: hv, e: e, f: f}
						if hv > best {
							best = hv
						}
					}
					cells.Add(int64(hi - lo))
				}
				if p < places-1 {
					out := make([]cell, hi-lo)
					copy(out, rows[nRows-1][lo:hi])
					boundaries[p] <- strip{lo: lo, hi: hi, cells: out}
				}
			}
			close(boundaries[p])
			results[p] = best
		}(p)
	}
	wg.Wait()
	res := Result{Cells: cells.Load()}
	for _, v := range results {
		if v > res.BestH {
			res.BestH = v
		}
	}
	return res, nil
}

// RunVertex executes SWLAG cell by cell with `threads` workers per place,
// tracking readiness with per-row progress counters — hand-specialized
// code at the framework's scheduling granularity.
func RunVertex(a, b string, places, threads, work int) (Result, error) {
	if places < 1 || threads < 1 {
		return Result{}, fmt.Errorf("native: places = %d threads = %d", places, threads)
	}
	h := len(a) + 1
	w := len(b) + 1
	sc := DefaultScoring()
	rows := make([][]cell, h)
	for i := range rows {
		rows[i] = make([]cell, w)
	}
	// progress[i] = number of finished cells at the start of row i.
	progress := make([]atomic.Int32, h)
	var best atomic.Int32
	var cells atomic.Int64

	starts := blockStarts(h, places)
	var wg sync.WaitGroup
	for p := 0; p < places; p++ {
		r0, r1 := starts[p], starts[p+1]
		// Rows are dealt to this place's workers round-robin; each worker
		// walks its rows left to right, spinning briefly on the producer
		// row's progress counter (the hand-rolled wavefront).
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(r0, r1, t int) {
				defer wg.Done()
				localBest := int32(0)
				for gi := r0 + t; gi < r1; gi += threads {
					row := rows[gi]
					for j := 0; j < w; j++ {
						if work > 0 {
							workSink.Store(workload.Spin(work))
						}
						if gi > 0 {
							for progress[gi-1].Load() < int32(j+1) {
								runtime.Gosched()
							}
						}
						if gi == 0 || j == 0 {
							row[j] = cell{h: 0, e: negInf, f: negInf}
						} else {
							left := row[j-1]
							top := rows[gi-1][j]
							diag := rows[gi-1][j-1]
							e := max2(left.h+sc.GapOpen, left.e+sc.GapExtend)
							f := max2(top.h+sc.GapOpen, top.f+sc.GapExtend)
							s := sc.Mismatch
							if a[gi-1] == b[j-1] {
								s = sc.Match
							}
							hv := max2(0, max2(diag.h+s, max2(e, f)))
							row[j] = cell{h: hv, e: e, f: f}
							if hv > localBest {
								localBest = hv
							}
						}
						progress[gi].Store(int32(j + 1))
					}
					cells.Add(int64(w))
				}
				for {
					cur := best.Load()
					if localBest <= cur || best.CompareAndSwap(cur, localBest) {
						break
					}
				}
			}(r0, r1, t)
		}
	}
	wg.Wait()
	return Result{BestH: best.Load(), Cells: cells.Load()}, nil
}

func max2(x, y int32) int32 {
	if x > y {
		return x
	}
	return y
}
