package native

import (
	"testing"

	"github.com/dpx10/dpx10/internal/apps"
	"github.com/dpx10/dpx10/internal/workload"
)

// bestSerial computes the expected best score via the apps reference.
func bestSerial(a, b string) int32 {
	app := apps.NewSWLAG(a, b)
	m := app.Serial()
	var best int32
	for i := range m {
		for j := range m[i] {
			if m[i][j].H > best {
				best = m[i][j].H
			}
		}
	}
	return best
}

func TestRunStripMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		n, m, places, stripW int
	}{
		{50, 60, 1, 16}, {50, 60, 4, 16}, {80, 40, 8, 8},
		{33, 77, 3, 1000}, {3, 90, 6, 7}, {90, 3, 5, 7},
	} {
		a := workload.Sequence(tc.n, workload.DNA, 1)
		b := workload.Sequence(tc.m, workload.DNA, 2)
		res, err := RunStrip(a, b, tc.places, tc.stripW, 0)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if want := bestSerial(a, b); res.BestH != want {
			t.Fatalf("%+v: best = %d, want %d", tc, res.BestH, want)
		}
		if want := int64(tc.n+1) * int64(tc.m+1); res.Cells != want {
			t.Fatalf("%+v: cells = %d, want %d", tc, res.Cells, want)
		}
	}
}

func TestRunStripMorePlacesThanRows(t *testing.T) {
	a := workload.Sequence(2, workload.DNA, 1) // 3 rows, 6 places
	b := workload.Sequence(40, workload.DNA, 2)
	res, err := RunStrip(a, b, 6, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := bestSerial(a, b); res.BestH != want {
		t.Fatalf("best = %d, want %d", res.BestH, want)
	}
}

func TestRunVertexMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		n, m, places, threads int
	}{
		{40, 50, 1, 1}, {40, 50, 4, 2}, {25, 25, 3, 3},
	} {
		a := workload.Sequence(tc.n, workload.DNA, 3)
		b := workload.Sequence(tc.m, workload.DNA, 4)
		res, err := RunVertex(a, b, tc.places, tc.threads, 0)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if want := bestSerial(a, b); res.BestH != want {
			t.Fatalf("%+v: best = %d, want %d", tc, res.BestH, want)
		}
	}
}

func TestBadArgs(t *testing.T) {
	if _, err := RunStrip("A", "C", 0, 8, 0); err == nil {
		t.Fatal("places=0 accepted")
	}
	if _, err := RunVertex("A", "C", 1, 0, 0); err == nil {
		t.Fatal("threads=0 accepted")
	}
}
