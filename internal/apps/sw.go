package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// Default Smith-Waterman scoring, matching the paper's Figure 7.
const (
	SWMatch    int32 = 2
	SWMismatch int32 = -1
	SWGap      int32 = -1
)

// SW is the simplified Smith-Waterman local alignment of the paper's
// §VII-A: linear gap penalty, adjacent-cell dependencies only
// (Diagonal pattern), scoring matrix
//
//	H(i,j) = max{ 0,
//	              H(i-1,j-1) + s(a_i, b_j),
//	              H(i-1,j) + p, H(i,j-1) + p }
type SW struct {
	A, B                 string
	Match, Mismatch, Gap int32
}

// NewSW builds the app with the paper's default scoring.
func NewSW(a, b string) *SW {
	return &SW{A: a, B: b, Match: SWMatch, Mismatch: SWMismatch, Gap: SWGap}
}

// Pattern returns the Diagonal pattern sized for the two sequences.
func (s *SW) Pattern() dpx10.Pattern {
	return dpx10.DiagonalPattern(int32(len(s.A))+1, int32(len(s.B))+1)
}

func (s *SW) score(i, j int32) int32 {
	if s.A[i-1] == s.B[j-1] {
		return s.Match
	}
	return s.Mismatch
}

// Compute implements the recurrence exactly as the paper's Figure 7 does:
// scan the provided vertices for the three neighbours.
func (s *SW) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	if i == 0 || j == 0 {
		return 0
	}
	var lefttop, left, top int32
	for _, v := range deps {
		switch {
		case v.ID.I == i-1 && v.ID.J == j-1:
			lefttop = v.Value + s.score(i, j)
		case v.ID.I == i-1 && v.ID.J == j:
			top = v.Value + s.Gap
		case v.ID.I == i && v.ID.J == j-1:
			left = v.Value + s.Gap
		}
	}
	return max32(0, lefttop, left, top)
}

// AppFinished is a no-op, as in Figure 7.
func (s *SW) AppFinished(*dpx10.Dag[int32]) {}

// Best returns the maximum similarity score and its cell.
func (s *SW) Best(dag *dpx10.Dag[int32]) (score int32, at dpx10.VertexID) {
	for i := int32(0); i <= int32(len(s.A)); i++ {
		for j := int32(0); j <= int32(len(s.B)); j++ {
			if v := dag.Result(i, j); v > score {
				score, at = v, dpx10.VertexID{I: i, J: j}
			}
		}
	}
	return score, at
}

// Backtrack reconstructs the best local alignment as two gapped strings.
func (s *SW) Backtrack(dag *dpx10.Dag[int32]) (alignedA, alignedB string) {
	_, at := s.Best(dag)
	var ra, rb []byte
	i, j := at.I, at.J
	for i > 0 && j > 0 && dag.Result(i, j) > 0 {
		v := dag.Result(i, j)
		switch {
		case v == dag.Result(i-1, j-1)+s.score(i, j):
			ra = append(ra, s.A[i-1])
			rb = append(rb, s.B[j-1])
			i, j = i-1, j-1
		case v == dag.Result(i-1, j)+s.Gap:
			ra = append(ra, s.A[i-1])
			rb = append(rb, '-')
			i--
		default:
			ra = append(ra, '-')
			rb = append(rb, s.B[j-1])
			j--
		}
	}
	reverse(ra)
	reverse(rb)
	return string(ra), string(rb)
}

func reverse(b []byte) {
	for a, z := 0, len(b)-1; a < z; a, z = a+1, z-1 {
		b[a], b[z] = b[z], b[a]
	}
}

// Serial computes the full scoring matrix with nested loops.
func (s *SW) Serial() [][]int32 {
	h := make([][]int32, len(s.A)+1)
	for i := range h {
		h[i] = make([]int32, len(s.B)+1)
	}
	for i := 1; i <= len(s.A); i++ {
		for j := 1; j <= len(s.B); j++ {
			h[i][j] = max32(0,
				h[i-1][j-1]+s.score(int32(i), int32(j)),
				h[i-1][j]+s.Gap,
				h[i][j-1]+s.Gap)
		}
	}
	return h
}

// Verify checks the distributed result cell by cell against Serial.
func (s *SW) Verify(dag *dpx10.Dag[int32]) error {
	want := s.Serial()
	for i := 0; i <= len(s.A); i++ {
		for j := 0; j <= len(s.B); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("sw: H(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
