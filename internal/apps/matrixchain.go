package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

// MatrixChain solves matrix-chain multiplication — the canonical 2D/1D
// algorithm of the paper's §III classification (Algorithm 3.2) and the
// workload of the Triangle pattern (Figure 5g):
//
//	m(i,i) = 0
//	m(i,j) = min_{i<=k<j} { m(i,k) + m(k+1,j) + d_i · d_{k+1} · d_{j+1} }
//
// where the chain multiplies matrices A_i (d_i × d_{i+1}), i in [0, n).
// Cell (i,j) needs its whole row segment and column segment — exactly the
// O(n) dependencies per vertex that make 2D/1D patterns communication-
// heavy, which is why the paper defers them to future work; the pattern
// library supports them regardless.
type MatrixChain struct {
	Dims []int64 // n+1 dimensions for n matrices
}

// NewMatrixChain builds the app for an explicit dimension vector.
func NewMatrixChain(dims []int64) (*MatrixChain, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("matrixchain: need at least 2 dimensions, got %d", len(dims))
	}
	for k, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("matrixchain: dimension %d is %d", k, d)
		}
	}
	return &MatrixChain{Dims: dims}, nil
}

// NewRandomMatrixChain builds an n-matrix chain with dimensions in
// [1, maxDim], deterministic in seed.
func NewRandomMatrixChain(n int, maxDim int32, seed int64) *MatrixChain {
	raw := workload.Ints(n+1, maxDim, seed)
	dims := make([]int64, n+1)
	for k, v := range raw {
		dims[k] = int64(v)
	}
	return &MatrixChain{Dims: dims}
}

// N returns the number of matrices in the chain.
func (m *MatrixChain) N() int { return len(m.Dims) - 1 }

// Pattern returns the Triangle pattern over n×n (Figure 5g).
func (m *MatrixChain) Pattern() dpx10.Pattern {
	return dpx10.TrianglePattern(int32(m.N()))
}

// Compute implements the recurrence; deps carry the row segment
// (i,i..j-1) followed by the column segment (i+1..j, j).
func (m *MatrixChain) Compute(i, j int32, deps []dpx10.Cell[int64]) int64 {
	if i == j {
		return 0
	}
	best := int64(1) << 62
	for k := i; k < j; k++ {
		left := mustDep(deps, i, k)
		right := mustDep(deps, k+1, j)
		cost := left + right + m.Dims[i]*m.Dims[k+1]*m.Dims[j+1]
		if cost < best {
			best = cost
		}
	}
	return best
}

// AppFinished is a no-op; use Cost and Parenthesization.
func (m *MatrixChain) AppFinished(*dpx10.Dag[int64]) {}

// Cost returns the minimum scalar-multiplication count for the chain.
func (m *MatrixChain) Cost(dag *dpx10.Dag[int64]) int64 {
	return dag.Result(0, int32(m.N())-1)
}

// Parenthesization reconstructs an optimal bracketing, e.g.
// "((A0 A1) A2)".
func (m *MatrixChain) Parenthesization(dag *dpx10.Dag[int64]) string {
	var build func(i, j int32) string
	build = func(i, j int32) string {
		if i == j {
			return fmt.Sprintf("A%d", i)
		}
		target := dag.Result(i, j)
		for k := i; k < j; k++ {
			cost := dag.Result(i, k) + dag.Result(k+1, j) + m.Dims[i]*m.Dims[k+1]*m.Dims[j+1]
			if cost == target {
				return "(" + build(i, k) + " " + build(k+1, j) + ")"
			}
		}
		panic("matrixchain: no split reproduces the optimal cost")
	}
	return build(0, int32(m.N())-1)
}

// Serial computes the table with the classic length-order loops.
func (m *MatrixChain) Serial() [][]int64 {
	n := m.N()
	t := make([][]int64, n)
	for i := range t {
		t[i] = make([]int64, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := int64(1) << 62
			for k := i; k < j; k++ {
				cost := t[i][k] + t[k+1][j] + m.Dims[i]*m.Dims[k+1]*m.Dims[j+1]
				if cost < best {
					best = cost
				}
			}
			t[i][j] = best
		}
	}
	return t
}

// Verify checks the active cells against Serial.
func (m *MatrixChain) Verify(dag *dpx10.Dag[int64]) error {
	want := m.Serial()
	n := m.N()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("matrixchain: m(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
