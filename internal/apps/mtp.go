package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

// MTP is the Manhattan Tourists Problem, the paper's second evaluation
// application (§VIII):
//
//	D(i,j) = max{ D(i-1,j) + w(i-1,j,i,j), D(i,j-1) + w(i,j-1,i,j) }
//
// on the Grid pattern (Figure 5a). Edge weights are a pure function of
// the endpoints (hash-based), so the grid never has to be materialized —
// exactly how the paper can run 1-billion-vertex instances.
type MTP struct {
	H, W int32
	MaxW int64
	Seed int64
}

// NewMTP builds an h×w tourist grid with weights in [0, maxW).
func NewMTP(h, w int32, maxW, seed int64) *MTP {
	if maxW <= 0 {
		maxW = 100
	}
	return &MTP{H: h, W: w, MaxW: maxW, Seed: seed}
}

// Pattern returns the Grid pattern (Figure 5a).
func (m *MTP) Pattern() dpx10.Pattern { return dpx10.GridPattern(m.H, m.W) }

// Weight returns the length of the edge (i1,j1) -> (i2,j2).
func (m *MTP) Weight(i1, j1, i2, j2 int32) int64 {
	return workload.EdgeWeight(i1, j1, i2, j2, m.MaxW, m.Seed)
}

// Compute implements the MTP recurrence; the origin scores zero.
func (m *MTP) Compute(i, j int32, deps []dpx10.Cell[int64]) int64 {
	if i == 0 && j == 0 {
		return 0
	}
	best := int64(-1 << 62)
	if i > 0 {
		best = max64(best, mustDep(deps, i-1, j)+m.Weight(i-1, j, i, j))
	}
	if j > 0 {
		best = max64(best, mustDep(deps, i, j-1)+m.Weight(i, j-1, i, j))
	}
	return best
}

// AppFinished is a no-op; use Best and Path.
func (m *MTP) AppFinished(*dpx10.Dag[int64]) {}

// Best returns the weight of the heaviest monotone path to the sink.
func (m *MTP) Best(dag *dpx10.Dag[int64]) int64 {
	return dag.Result(m.H-1, m.W-1)
}

// Path backtracks the optimal route from the sink to the origin and
// returns it origin-first.
func (m *MTP) Path(dag *dpx10.Dag[int64]) []dpx10.VertexID {
	var rev []dpx10.VertexID
	i, j := m.H-1, m.W-1
	for {
		rev = append(rev, dpx10.VertexID{I: i, J: j})
		if i == 0 && j == 0 {
			break
		}
		v := dag.Result(i, j)
		if i > 0 && dag.Result(i-1, j)+m.Weight(i-1, j, i, j) == v {
			i--
		} else {
			j--
		}
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// Serial computes the full matrix with nested loops.
func (m *MTP) Serial() [][]int64 {
	d := make([][]int64, m.H)
	for i := range d {
		d[i] = make([]int64, m.W)
	}
	for i := int32(0); i < m.H; i++ {
		for j := int32(0); j < m.W; j++ {
			if i == 0 && j == 0 {
				continue
			}
			best := int64(-1 << 62)
			if i > 0 {
				best = max64(best, d[i-1][j]+m.Weight(i-1, j, i, j))
			}
			if j > 0 {
				best = max64(best, d[i][j-1]+m.Weight(i, j-1, i, j))
			}
			d[i][j] = best
		}
	}
	return d
}

// Verify checks the distributed result cell by cell against Serial.
func (m *MTP) Verify(dag *dpx10.Dag[int64]) error {
	want := m.Serial()
	for i := int32(0); i < m.H; i++ {
		for j := int32(0); j < m.W; j++ {
			if got := dag.Result(i, j); got != want[i][j] {
				return fmt.Errorf("mtp: D(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
