package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

// OBST builds an optimal binary search tree — the second classic of the
// Triangle pattern's 2D/1D family (with matrix-chain multiplication):
// given access frequencies f_i for keys k_0 < ... < k_{n-1},
//
//	e(i,i) = f_i
//	e(i,j) = min_{i<=r<=j} { e(i,r-1) + e(r+1,j) } + Σ_{k=i..j} f_k
//
// where e(i,j) is the weighted search cost of an optimal tree over keys
// i..j (empty ranges cost 0). The per-vertex value packs the cost; the
// frequency prefix sums live in the app.
type OBST struct {
	Freq   []int64 // access frequency per key
	prefix []int64 // prefix[i] = Σ Freq[0..i-1]
}

// NewOBST builds the app for explicit key frequencies.
func NewOBST(freq []int64) (*OBST, error) {
	if len(freq) == 0 {
		return nil, fmt.Errorf("obst: no keys")
	}
	for k, f := range freq {
		if f < 0 {
			return nil, fmt.Errorf("obst: negative frequency %d at key %d", f, k)
		}
	}
	o := &OBST{Freq: freq, prefix: make([]int64, len(freq)+1)}
	for k, f := range freq {
		o.prefix[k+1] = o.prefix[k] + f
	}
	return o, nil
}

// NewRandomOBST builds an n-key instance with frequencies in [1, maxF],
// deterministic in seed.
func NewRandomOBST(n int, maxF int32, seed int64) *OBST {
	raw := workload.Ints(n, maxF, seed)
	freq := make([]int64, n)
	for k, v := range raw {
		freq[k] = int64(v)
	}
	o, err := NewOBST(freq)
	if err != nil {
		panic(err) // unreachable: generated frequencies are positive
	}
	return o
}

// N returns the number of keys.
func (o *OBST) N() int { return len(o.Freq) }

// weight is Σ Freq[i..j].
func (o *OBST) weight(i, j int32) int64 { return o.prefix[j+1] - o.prefix[i] }

// Pattern returns the Triangle pattern over n×n (Figure 5g).
func (o *OBST) Pattern() dpx10.Pattern { return dpx10.TrianglePattern(int32(o.N())) }

// Compute implements the recurrence. The Triangle pattern supplies the
// row segment (i, i..j-1) and column segment (i+1..j, j); the split at
// root r pairs e(i,r-1) (or 0 when r == i) with e(r+1,j) (or 0 when
// r == j).
func (o *OBST) Compute(i, j int32, deps []dpx10.Cell[int64]) int64 {
	if i == j {
		return o.Freq[i]
	}
	best := int64(1) << 62
	for r := i; r <= j; r++ {
		var left, right int64
		if r > i {
			left = mustDep(deps, i, r-1)
		}
		if r < j {
			right = mustDep(deps, r+1, j)
		}
		if cost := left + right; cost < best {
			best = cost
		}
	}
	return best + o.weight(i, j)
}

// AppFinished is a no-op; use Cost and Root.
func (o *OBST) AppFinished(*dpx10.Dag[int64]) {}

// Cost returns the optimal weighted search cost over all keys.
func (o *OBST) Cost(dag *dpx10.Dag[int64]) int64 {
	return dag.Result(0, int32(o.N())-1)
}

// Tree reconstructs the optimal tree as a parent vector: parent[k] is the
// parent key index of key k, with the root's parent -1.
func (o *OBST) Tree(dag *dpx10.Dag[int64]) []int {
	parent := make([]int, o.N())
	var build func(i, j int32, p int)
	build = func(i, j int32, p int) {
		if i > j {
			return
		}
		target := dag.Result(i, j) - o.weight(i, j)
		for r := i; r <= j; r++ {
			var left, right int64
			if r > i {
				left = dag.Result(i, r-1)
			}
			if r < j {
				right = dag.Result(r+1, j)
			}
			if left+right == target {
				parent[r] = p
				build(i, r-1, int(r))
				build(r+1, j, int(r))
				return
			}
		}
		panic("obst: no root reproduces the optimal cost")
	}
	build(0, int32(o.N())-1, -1)
	return parent
}

// Serial computes the table with the classic span-order loops.
func (o *OBST) Serial() [][]int64 {
	n := o.N()
	e := make([][]int64, n)
	for i := range e {
		e[i] = make([]int64, n)
		e[i][i] = o.Freq[i]
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := int64(1) << 62
			for r := i; r <= j; r++ {
				var left, right int64
				if r > i {
					left = e[i][r-1]
				}
				if r < j {
					right = e[r+1][j]
				}
				if cost := left + right; cost < best {
					best = cost
				}
			}
			e[i][j] = best + o.weight(int32(i), int32(j))
		}
	}
	return e
}

// Verify checks the active cells against Serial.
func (o *OBST) Verify(dag *dpx10.Dag[int64]) error {
	want := o.Serial()
	n := o.N()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("obst: e(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
