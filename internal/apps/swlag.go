package apps

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/codec"
	"github.com/dpx10/dpx10/internal/workload"
)

// workSink keeps the synthetic work observable to the compiler; atomic
// because Compute runs concurrently across workers.
var workSink atomic.Uint64

// Default SWLAG scoring: affine gaps cost GapOpen to start and GapExtend
// per additional position.
const (
	SWLAGMatch    int32 = 2
	SWLAGMismatch int32 = -1
	SWLAGOpen     int32 = -2
	SWLAGExtend   int32 = -1
)

// AffineCell is the per-vertex value of SWLAG: the three Gotoh matrices
// collapsed into one value per cell, since DPX10 manages exactly one value
// per vertex (paper §V). H is the local-alignment score, E the best score
// ending in a gap in A (horizontal), F in B (vertical).
type AffineCell struct {
	H, E, F int32
}

// AffineCodec is the fixed-width 12-byte codec for AffineCell — the kind
// of hot-path custom codec the framework's Codec extension point exists
// for.
type AffineCodec struct{}

var _ codec.Codec[AffineCell] = AffineCodec{}

func (AffineCodec) Encode(dst []byte, v AffineCell) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(v.H))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(v.E))
	return binary.LittleEndian.AppendUint32(dst, uint32(v.F))
}

func (AffineCodec) Decode(src []byte) (AffineCell, int, error) {
	if len(src) < 12 {
		return AffineCell{}, 0, codec.ErrShortBuffer
	}
	return AffineCell{
		H: int32(binary.LittleEndian.Uint32(src)),
		E: int32(binary.LittleEndian.Uint32(src[4:])),
		F: int32(binary.LittleEndian.Uint32(src[8:])),
	}, 12, nil
}

// SWLAG is Smith-Waterman with linear and affine gap penalty — the paper's
// first evaluation application (§VIII). With GapExtend == GapOpen it
// degenerates to the linear-penalty algorithm; the affine form is Gotoh's:
//
//	E(i,j) = max{ H(i,j-1) + open, E(i,j-1) + extend }
//	F(i,j) = max{ H(i-1,j) + open, F(i-1,j) + extend }
//	H(i,j) = max{ 0, H(i-1,j-1) + s(a_i,b_j), E(i,j), F(i,j) }
//
// Dependencies are still the three adjacent cells, so the DAG pattern is
// the same Diagonal as LCS (Figure 5b).
type SWLAG struct {
	A, B                                string
	Match, Mismatch, GapOpen, GapExtend int32
	// Work adds Work iterations of synthetic integer work per cell — the
	// overhead experiment's knob for matching the paper's per-activity
	// compute cost (see bench.Fig12).
	Work int
}

// NewSWLAG builds the app with the default affine scoring.
func NewSWLAG(a, b string) *SWLAG {
	return &SWLAG{
		A: a, B: b,
		Match: SWLAGMatch, Mismatch: SWLAGMismatch,
		GapOpen: SWLAGOpen, GapExtend: SWLAGExtend,
	}
}

// Pattern returns the Diagonal pattern sized for the sequences.
func (s *SWLAG) Pattern() dpx10.Pattern {
	return dpx10.DiagonalPattern(int32(len(s.A))+1, int32(len(s.B))+1)
}

// Codec returns the fixed-width cell codec.
func (s *SWLAG) Codec() dpx10.Codec[AffineCell] { return AffineCodec{} }

func (s *SWLAG) score(i, j int32) int32 {
	if s.A[i-1] == s.B[j-1] {
		return s.Match
	}
	return s.Mismatch
}

// negInf is low enough never to win a max yet safe from underflow.
const negInf int32 = -(1 << 28)

// Compute implements the Gotoh recurrence for one cell.
func (s *SWLAG) Compute(i, j int32, deps []dpx10.Cell[AffineCell]) AffineCell {
	if s.Work > 0 {
		workSink.Store(workload.Spin(s.Work))
	}
	if i == 0 || j == 0 {
		return AffineCell{H: 0, E: negInf, F: negInf}
	}
	left := mustDep(deps, i, j-1)
	top := mustDep(deps, i-1, j)
	diag := mustDep(deps, i-1, j-1)
	e := max32(left.H+s.GapOpen, left.E+s.GapExtend)
	f := max32(top.H+s.GapOpen, top.F+s.GapExtend)
	h := max32(0, diag.H+s.score(i, j), e, f)
	return AffineCell{H: h, E: e, F: f}
}

// AppFinished is a no-op; use Best/Verify for result processing.
func (s *SWLAG) AppFinished(*dpx10.Dag[AffineCell]) {}

// Best returns the maximum local-alignment score.
func (s *SWLAG) Best(dag *dpx10.Dag[AffineCell]) int32 {
	var best int32
	for i := int32(0); i <= int32(len(s.A)); i++ {
		for j := int32(0); j <= int32(len(s.B)); j++ {
			if v := dag.Result(i, j).H; v > best {
				best = v
			}
		}
	}
	return best
}

// Serial computes the full Gotoh matrices with nested loops.
func (s *SWLAG) Serial() [][]AffineCell {
	m := make([][]AffineCell, len(s.A)+1)
	for i := range m {
		m[i] = make([]AffineCell, len(s.B)+1)
		for j := range m[i] {
			m[i][j] = AffineCell{H: 0, E: negInf, F: negInf}
		}
	}
	for i := 1; i <= len(s.A); i++ {
		for j := 1; j <= len(s.B); j++ {
			e := max32(m[i][j-1].H+s.GapOpen, m[i][j-1].E+s.GapExtend)
			f := max32(m[i-1][j].H+s.GapOpen, m[i-1][j].F+s.GapExtend)
			h := max32(0, m[i-1][j-1].H+s.score(int32(i), int32(j)), e, f)
			m[i][j] = AffineCell{H: h, E: e, F: f}
		}
	}
	return m
}

// Verify checks all three matrices cell by cell.
func (s *SWLAG) Verify(dag *dpx10.Dag[AffineCell]) error {
	want := s.Serial()
	for i := 0; i <= len(s.A); i++ {
		for j := 0; j <= len(s.B); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("swlag: cell (%d,%d) = %+v, want %+v", i, j, got, want[i][j])
			}
		}
	}
	return nil
}

// Backtrack reconstructs the best local alignment from the three Gotoh
// matrices, including multi-position affine gaps.
func (s *SWLAG) Backtrack(dag *dpx10.Dag[AffineCell]) (alignedA, alignedB string) {
	// Find the best cell.
	var bi, bj int32
	var best int32
	for i := int32(0); i <= int32(len(s.A)); i++ {
		for j := int32(0); j <= int32(len(s.B)); j++ {
			if v := dag.Result(i, j).H; v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return "", ""
	}
	var ra, rb []byte
	i, j := bi, bj
	const (
		stM = iota // in H: match/mismatch context
		stE        // in E: gap in A (consuming B)
		stF        // in F: gap in B (consuming A)
	)
	state := stM
	for i > 0 || j > 0 {
		cell := dag.Result(i, j)
		switch state {
		case stM:
			if cell.H == 0 {
				i, j = 0, 0 // local alignment start
				continue
			}
			switch {
			case cell.H == cell.E:
				state = stE
			case cell.H == cell.F:
				state = stF
			default:
				ra = append(ra, s.A[i-1])
				rb = append(rb, s.B[j-1])
				i, j = i-1, j-1
			}
		case stE:
			ra = append(ra, '-')
			rb = append(rb, s.B[j-1])
			left := dag.Result(i, j-1)
			if cell.E == left.H+s.GapOpen {
				state = stM
			}
			j--
		case stF:
			ra = append(ra, s.A[i-1])
			rb = append(rb, '-')
			top := dag.Result(i-1, j)
			if cell.F == top.H+s.GapOpen {
				state = stM
			}
			i--
		}
		if state == stM && dag.Result(i, j).H == 0 {
			break
		}
	}
	reverse(ra)
	reverse(rb)
	return string(ra), string(rb)
}
