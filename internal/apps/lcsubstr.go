package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// diagOnlyPattern is the dependency structure of the longest common
// substring recurrence: each cell needs only its top-left neighbour.
// None of the eight built-ins has this minimal shape (Diagonal would
// over-constrain with left/top edges and triple the traffic), so the app
// carries its own pattern — a compact demonstration of §V's custom
// pattern API inside the application library.
type diagOnlyPattern struct{ h, w int32 }

func (p diagOnlyPattern) Bounds() (int32, int32) { return p.h, p.w }

func (p diagOnlyPattern) Dependencies(i, j int32, buf []dpx10.VertexID) []dpx10.VertexID {
	if i > 0 && j > 0 {
		buf = append(buf, dpx10.VertexID{I: i - 1, J: j - 1})
	}
	return buf
}

func (p diagOnlyPattern) AntiDependencies(i, j int32, buf []dpx10.VertexID) []dpx10.VertexID {
	if i+1 < p.h && j+1 < p.w {
		buf = append(buf, dpx10.VertexID{I: i + 1, J: j + 1})
	}
	return buf
}

// LCSubstr computes the longest common *substring* (contiguous) of two
// strings — the problem of the paper's Figure 1 walk-through:
//
//	F(i,j) = F(i-1,j-1) + 1   if a_i == b_j
//	F(i,j) = 0                otherwise
type LCSubstr struct {
	A, B string
}

// NewLCSubstr builds the app for the two strings.
func NewLCSubstr(a, b string) *LCSubstr { return &LCSubstr{A: a, B: b} }

// Pattern returns the minimal diagonal-only custom pattern.
func (l *LCSubstr) Pattern() dpx10.Pattern {
	return diagOnlyPattern{h: int32(len(l.A)) + 1, w: int32(len(l.B)) + 1}
}

// Compute implements the recurrence.
func (l *LCSubstr) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	if i == 0 || j == 0 || l.A[i-1] != l.B[j-1] {
		return 0
	}
	if len(deps) == 0 { // (1,1) matching cells with no diagonal ancestor
		return 1
	}
	return deps[0].Value + 1
}

// AppFinished is a no-op; use Longest.
func (l *LCSubstr) AppFinished(*dpx10.Dag[int32]) {}

// Longest returns the longest common substring and its length.
func (l *LCSubstr) Longest(dag *dpx10.Dag[int32]) (string, int32) {
	var best int32
	var endI int32
	for i := int32(1); i <= int32(len(l.A)); i++ {
		for j := int32(1); j <= int32(len(l.B)); j++ {
			if v := dag.Result(i, j); v > best {
				best, endI = v, i
			}
		}
	}
	return l.A[endI-best : endI], best
}

// Serial computes the full matrix with nested loops.
func (l *LCSubstr) Serial() [][]int32 {
	f := make([][]int32, len(l.A)+1)
	for i := range f {
		f[i] = make([]int32, len(l.B)+1)
	}
	for i := 1; i <= len(l.A); i++ {
		for j := 1; j <= len(l.B); j++ {
			if l.A[i-1] == l.B[j-1] {
				f[i][j] = f[i-1][j-1] + 1
			}
		}
	}
	return f
}

// Verify checks the distributed result cell by cell against Serial.
func (l *LCSubstr) Verify(dag *dpx10.Dag[int32]) error {
	want := l.Serial()
	for i := 0; i <= len(l.A); i++ {
		for j := 0; j <= len(l.B); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("lcsubstr: F(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
