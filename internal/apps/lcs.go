package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// LCS computes the longest common subsequence of two strings — the
// paper's running example (§IV, Figure 1) with the recurrence of §VI-B:
//
//	F[i,j] = F[i-1,j-1] + 1              if x_i == y_j
//	F[i,j] = max(F[i-1,j], F[i,j-1])     otherwise
//
// over a (len(A)+1)×(len(B)+1) matrix with the Diagonal pattern.
type LCS struct {
	A, B string
}

// NewLCS builds the app for the two input strings.
func NewLCS(a, b string) *LCS { return &LCS{A: a, B: b} }

// Pattern returns the DAG pattern of the computation (Figure 5b).
func (l *LCS) Pattern() dpx10.Pattern {
	return dpx10.DiagonalPattern(int32(len(l.A))+1, int32(len(l.B))+1)
}

// Compute implements the LCS recurrence; row 0 and column 0 are zero.
func (l *LCS) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	if i == 0 || j == 0 {
		return 0
	}
	if l.A[i-1] == l.B[j-1] {
		return mustDep(deps, i-1, j-1) + 1
	}
	return max32(mustDep(deps, i-1, j), mustDep(deps, i, j-1))
}

// AppFinished is a no-op; results are pulled via Length and Backtrack.
func (l *LCS) AppFinished(*dpx10.Dag[int32]) {}

// Length returns the LCS length from a completed run.
func (l *LCS) Length(dag *dpx10.Dag[int32]) int32 {
	return dag.Result(int32(len(l.A)), int32(len(l.B)))
}

// Backtrack reconstructs one longest common subsequence from the finished
// matrix — the paper's "backtracking method" result processing.
func (l *LCS) Backtrack(dag *dpx10.Dag[int32]) string {
	var out []byte
	i, j := int32(len(l.A)), int32(len(l.B))
	for i > 0 && j > 0 {
		switch {
		case l.A[i-1] == l.B[j-1]:
			out = append(out, l.A[i-1])
			i, j = i-1, j-1
		case dag.Result(i-1, j) >= dag.Result(i, j-1):
			i--
		default:
			j--
		}
	}
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return string(out)
}

// Serial computes the full matrix with nested loops.
func (l *LCS) Serial() [][]int32 {
	f := make([][]int32, len(l.A)+1)
	for i := range f {
		f[i] = make([]int32, len(l.B)+1)
	}
	for i := 1; i <= len(l.A); i++ {
		for j := 1; j <= len(l.B); j++ {
			if l.A[i-1] == l.B[j-1] {
				f[i][j] = f[i-1][j-1] + 1
			} else {
				f[i][j] = max32(f[i-1][j], f[i][j-1])
			}
		}
	}
	return f
}

// Verify checks every cell of the distributed result against Serial.
func (l *LCS) Verify(dag *dpx10.Dag[int32]) error {
	want := l.Serial()
	for i := 0; i <= len(l.A); i++ {
		for j := 0; j <= len(l.B); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("lcs: F(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
