package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// LPS computes the Longest Palindromic Subsequence, the paper's third
// evaluation application (§VIII):
//
//	D(i,i)   = 1
//	D(i,j)   = 2                     if x_i == x_j and j == i+1
//	D(i,j)   = D(i+1,j-1) + 2        if x_i == x_j and j >  i+1
//	D(i,j)   = max{ D(i+1,j), D(i,j-1) }   otherwise
//
// over the upper triangle of an n×n matrix — the Interval pattern
// (Figure 5d). Cell (0, n-1) holds the answer.
type LPS struct {
	S string
}

// NewLPS builds the app for string s (must be non-empty).
func NewLPS(s string) *LPS { return &LPS{S: s} }

// Pattern returns the Interval pattern over |S|×|S|.
func (l *LPS) Pattern() dpx10.Pattern { return dpx10.IntervalPattern(int32(len(l.S))) }

// Compute implements the LPS recurrence. 0-based: cell (i,j) covers the
// substring S[i..j].
func (l *LPS) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	switch {
	case i == j:
		return 1
	case l.S[i] == l.S[j] && j == i+1:
		return 2
	case l.S[i] == l.S[j]:
		return mustDep(deps, i+1, j-1) + 2
	default:
		return max32(mustDep(deps, i+1, j), mustDep(deps, i, j-1))
	}
}

// AppFinished is a no-op; use Length and Subsequence.
func (l *LPS) AppFinished(*dpx10.Dag[int32]) {}

// Length returns the LPS length of the whole string.
func (l *LPS) Length(dag *dpx10.Dag[int32]) int32 {
	return dag.Result(0, int32(len(l.S))-1)
}

// Subsequence backtracks one longest palindromic subsequence.
func (l *LPS) Subsequence(dag *dpx10.Dag[int32]) string {
	var left, right []byte
	i, j := int32(0), int32(len(l.S))-1
	for i < j {
		switch {
		case l.S[i] == l.S[j]:
			left = append(left, l.S[i])
			right = append(right, l.S[j])
			i, j = i+1, j-1
		case dag.Result(i+1, j) >= dag.Result(i, j-1):
			i++
		default:
			j--
		}
	}
	if i == j {
		left = append(left, l.S[i])
	}
	reverse(right)
	return string(append(left, right...))
}

// Serial computes the upper triangle with the standard length-order loop.
func (l *LPS) Serial() [][]int32 {
	n := len(l.S)
	d := make([][]int32, n)
	for i := range d {
		d[i] = make([]int32, n)
		d[i][i] = 1
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			switch {
			case l.S[i] == l.S[j] && span == 1:
				d[i][j] = 2
			case l.S[i] == l.S[j]:
				d[i][j] = d[i+1][j-1] + 2
			default:
				d[i][j] = max32(d[i+1][j], d[i][j-1])
			}
		}
	}
	return d
}

// Verify checks the active cells of the distributed result against Serial.
func (l *LPS) Verify(dag *dpx10.Dag[int32]) error {
	want := l.Serial()
	n := len(l.S)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("lps: D(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
