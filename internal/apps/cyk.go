package apps

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/codec"
)

// CYK recognizes a string against a context-free grammar in Chomsky
// normal form — the classic 2D/1D parsing DP on the Triangle pattern
// (Figure 5g): cell (i,j) is the set of nonterminals deriving the span
// [i..j], and needs every split point's (i,k) and (k+1,j):
//
//	P(i,i) = { A : A -> terminal s_i }
//	P(i,j) = { A : A -> B C, B ∈ P(i,k), C ∈ P(k+1,j), i <= k < j }
//
// The per-vertex value is a uint64 bitmask of nonterminals (up to 64),
// showing a non-scalar fixed-width value type on the hot path.
type CYK struct {
	// Grammar in CNF over nonterminals 0..NT-1 (0 is the start symbol).
	NT        int
	Binary    []CYKBinaryRule // A -> B C
	Terminals map[byte]uint64 // terminal -> bitmask of A with A -> terminal
	Input     string
}

// CYKBinaryRule is one production A -> B C.
type CYKBinaryRule struct{ A, B, C int }

// NewRandomCYK builds a random CNF grammar with nt nonterminals over the
// DNA alphabet and a random input of length n, deterministic in seed.
func NewRandomCYK(nt, nRules, n int, seed int64) *CYK {
	rng := rand.New(rand.NewSource(seed))
	g := &CYK{NT: nt, Terminals: map[byte]uint64{}}
	alphabet := "ACGT"
	// Every terminal derivable by at least one nonterminal.
	for k := 0; k < len(alphabet); k++ {
		g.Terminals[alphabet[k]] |= 1 << uint(rng.Intn(nt))
	}
	for r := 0; r < nRules; r++ {
		g.Binary = append(g.Binary, CYKBinaryRule{
			A: rng.Intn(nt), B: rng.Intn(nt), C: rng.Intn(nt),
		})
	}
	buf := make([]byte, n)
	for k := range buf {
		buf[k] = alphabet[rng.Intn(len(alphabet))]
	}
	g.Input = string(buf)
	return g
}

// Pattern returns the Triangle pattern over |Input|×|Input|.
func (g *CYK) Pattern() dpx10.Pattern { return dpx10.TrianglePattern(int32(len(g.Input))) }

// Codec returns the fixed-width bitmask codec.
func (g *CYK) Codec() dpx10.Codec[uint64] { return cykCodec{} }

type cykCodec struct{}

var _ codec.Codec[uint64] = cykCodec{}

func (cykCodec) Encode(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func (cykCodec) Decode(src []byte) (uint64, int, error) {
	if len(src) < 8 {
		return 0, 0, codec.ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(src), 8, nil
}

// combine applies the binary rules to a (left, right) mask pair.
func (g *CYK) combine(left, right uint64) uint64 {
	var out uint64
	for _, r := range g.Binary {
		if left&(1<<uint(r.B)) != 0 && right&(1<<uint(r.C)) != 0 {
			out |= 1 << uint(r.A)
		}
	}
	return out
}

// Compute implements the CYK recurrence; deps carry the row segment
// (i, i..j-1) then the column segment (i+1..j, j), so the split at k
// pairs deps (i,k) with (k+1, j).
func (g *CYK) Compute(i, j int32, deps []dpx10.Cell[uint64]) uint64 {
	if i == j {
		return g.Terminals[g.Input[i]]
	}
	var mask uint64
	for k := i; k < j; k++ {
		left := mustDep(deps, i, k)
		right := mustDep(deps, k+1, j)
		mask |= g.combine(left, right)
	}
	return mask
}

// AppFinished is a no-op; use Accepts and Parseable.
func (g *CYK) AppFinished(*dpx10.Dag[uint64]) {}

// Accepts reports whether the start symbol derives the whole input.
func (g *CYK) Accepts(dag *dpx10.Dag[uint64]) bool {
	return dag.Result(0, int32(len(g.Input))-1)&1 != 0
}

// Parseable counts the spans derivable by at least one nonterminal.
func (g *CYK) Parseable(dag *dpx10.Dag[uint64]) int {
	n := int32(len(g.Input))
	count := 0
	for i := int32(0); i < n; i++ {
		for j := i; j < n; j++ {
			if dag.Result(i, j) != 0 {
				count++
			}
		}
	}
	return count
}

// Serial computes the full chart with the classic span-order loops.
func (g *CYK) Serial() [][]uint64 {
	n := len(g.Input)
	p := make([][]uint64, n)
	for i := range p {
		p[i] = make([]uint64, n)
		p[i][i] = g.Terminals[g.Input[i]]
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			var mask uint64
			for k := i; k < j; k++ {
				mask |= g.combine(p[i][k], p[k+1][j])
			}
			p[i][j] = mask
		}
	}
	return p
}

// Verify checks the chart's active cells against Serial.
func (g *CYK) Verify(dag *dpx10.Dag[uint64]) error {
	want := g.Serial()
	n := len(g.Input)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("cyk: P(%d,%d) = %x, want %x", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
