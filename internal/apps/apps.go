// Package apps implements the dynamic-programming applications used by
// the paper: the two demo applications of §VII (Smith-Waterman, 0/1
// Knapsack) and the four evaluation applications of §VIII (SWLAG —
// Smith-Waterman with linear and affine gap penalties, Manhattan Tourists,
// Longest Palindromic Subsequence, 0/1 Knapsack), plus LCS (the paper's
// running example in §IV) and edit distance.
//
// Every application is written against the public dpx10 API — exactly as
// a framework user would write it — and carries a serial reference
// implementation plus a Verify method, so the distributed runs are checked
// end to end. Where the paper's result processing is "a backtracking
// method", the backtrack is implemented too.
package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// Verifier is implemented by every app in this package: it recomputes the
// result serially and compares it with the distributed Dag.
type Verifier[T any] interface {
	Verify(dag *dpx10.Dag[T]) error
}

// cellsByID indexes dependency cells for recurrences that address
// neighbours by coordinates, as the paper's Figure 7 does with its loop
// over `vertices`.
func depValue[T any](deps []dpx10.Cell[T], i, j int32) (T, bool) {
	for _, d := range deps {
		if d.ID.I == i && d.ID.J == j {
			return d.Value, true
		}
	}
	var zero T
	return zero, false
}

func mustDep[T any](deps []dpx10.Cell[T], i, j int32) T {
	v, ok := depValue(deps, i, j)
	if !ok {
		panic(fmt.Sprintf("apps: dependency (%d,%d) not provided", i, j))
	}
	return v
}

func max32(vs ...int32) int32 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func max64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
