package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// EditDistance computes the Levenshtein distance between two strings —
// not in the paper's evaluation, but the canonical 2D/0D algorithm its
// §III classification describes, and a natural extra workload:
//
//	D(i,0) = i, D(0,j) = j
//	D(i,j) = min{ D(i-1,j)+1, D(i,j-1)+1, D(i-1,j-1)+cost(a_i,b_j) }
//
// on the Diagonal pattern.
type EditDistance struct {
	A, B string
}

// NewEditDistance builds the app for the two strings.
func NewEditDistance(a, b string) *EditDistance { return &EditDistance{A: a, B: b} }

// Pattern returns the Diagonal pattern sized for the strings.
func (e *EditDistance) Pattern() dpx10.Pattern {
	return dpx10.DiagonalPattern(int32(len(e.A))+1, int32(len(e.B))+1)
}

// Compute implements the Levenshtein recurrence.
func (e *EditDistance) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	if i == 0 {
		return j
	}
	if j == 0 {
		return i
	}
	cost := int32(1)
	if e.A[i-1] == e.B[j-1] {
		cost = 0
	}
	d := mustDep(deps, i-1, j-1) + cost
	if v := mustDep(deps, i-1, j) + 1; v < d {
		d = v
	}
	if v := mustDep(deps, i, j-1) + 1; v < d {
		d = v
	}
	return d
}

// AppFinished is a no-op.
func (e *EditDistance) AppFinished(*dpx10.Dag[int32]) {}

// Distance returns the edit distance from a completed run.
func (e *EditDistance) Distance(dag *dpx10.Dag[int32]) int32 {
	return dag.Result(int32(len(e.A)), int32(len(e.B)))
}

// Serial computes the full matrix with nested loops.
func (e *EditDistance) Serial() [][]int32 {
	d := make([][]int32, len(e.A)+1)
	for i := range d {
		d[i] = make([]int32, len(e.B)+1)
		d[i][0] = int32(i)
	}
	for j := 0; j <= len(e.B); j++ {
		d[0][j] = int32(j)
	}
	for i := 1; i <= len(e.A); i++ {
		for j := 1; j <= len(e.B); j++ {
			cost := int32(1)
			if e.A[i-1] == e.B[j-1] {
				cost = 0
			}
			v := d[i-1][j-1] + cost
			if x := d[i-1][j] + 1; x < v {
				v = x
			}
			if x := d[i][j-1] + 1; x < v {
				v = x
			}
			d[i][j] = v
		}
	}
	return d
}

// Verify checks the distributed result cell by cell against Serial.
func (e *EditDistance) Verify(dag *dpx10.Dag[int32]) error {
	want := e.Serial()
	for i := 0; i <= len(e.A); i++ {
		for j := 0; j <= len(e.B); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("editdist: D(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
