package apps

import (
	"strings"
	"testing"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

func TestMatrixChainDistributedMatchesSerial(t *testing.T) {
	app := NewRandomMatrixChain(18, 40, 3)
	dag, err := dpx10.Run[int64](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	// The parenthesization must re-cost to the optimum.
	expr := app.Parenthesization(dag)
	if got := costOf(t, app.Dims, expr); got != app.Cost(dag) {
		t.Fatalf("parenthesization %q costs %d, optimum is %d", expr, got, app.Cost(dag))
	}
}

// costOf evaluates a parenthesized chain expression's multiplication cost.
func costOf(t *testing.T, dims []int64, expr string) int64 {
	t.Helper()
	var total int64
	var eval func(s string) (rows, cols int64, rest string)
	eval = func(s string) (int64, int64, string) {
		if strings.HasPrefix(s, "A") {
			k := 1
			idx := int64(0)
			for k < len(s) && s[k] >= '0' && s[k] <= '9' {
				idx = idx*10 + int64(s[k]-'0')
				k++
			}
			return dims[idx], dims[idx+1], s[k:]
		}
		if s[0] != '(' {
			t.Fatalf("bad expression at %q", s)
		}
		r1, c1, rest := eval(s[1:])
		if rest[0] != ' ' {
			t.Fatalf("bad expression at %q", rest)
		}
		r2, c2, rest := eval(rest[1:])
		if rest[0] != ')' {
			t.Fatalf("bad expression at %q", rest)
		}
		if c1 != r2 {
			t.Fatalf("dimension mismatch %dx%d · %dx%d", r1, c1, r2, c2)
		}
		total += r1 * c1 * c2
		return r1, c2, rest[1:]
	}
	r, c, rest := eval(expr)
	if rest != "" || r != dims[0] || c != dims[len(dims)-1] {
		t.Fatalf("expression %q did not consume the chain", expr)
	}
	return total
}

func TestMatrixChainKnown(t *testing.T) {
	// Classic CLRS example: dims 30,35,15,5,10,20,25 -> 15125.
	app, err := NewMatrixChain([]int64{30, 35, 15, 5, 10, 20, 25})
	if err != nil {
		t.Fatal(err)
	}
	dag, err := dpx10.Run[int64](app, app.Pattern(), dpx10.Places(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Cost(dag); got != 15125 {
		t.Fatalf("cost = %d, want 15125", got)
	}
}

func TestMatrixChainRejectsBadDims(t *testing.T) {
	if _, err := NewMatrixChain([]int64{5}); err == nil {
		t.Fatal("single dimension accepted")
	}
	if _, err := NewMatrixChain([]int64{5, 0, 3}); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestViterbiDistributedMatchesSerial(t *testing.T) {
	app := NewRandomViterbi(8, 4, 40, 17)
	dag, err := dpx10.Run[float64](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[float64](dpx10.Float64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	path := app.Path(dag)
	if len(path) != 40 {
		t.Fatalf("path length = %d, want 40", len(path))
	}
	// Re-score the decoded path; it must equal the best log-probability.
	score := app.LogInit[path[0]] + app.LogEmit[path[0]][app.Obs[0]]
	for tt := 1; tt < len(path); tt++ {
		score += app.LogTrans[path[tt-1]][path[tt]] + app.LogEmit[path[tt]][app.Obs[tt]]
	}
	if !approxEq(score, app.Best(dag)) {
		t.Fatalf("decoded path scores %g, trellis best is %g", score, app.Best(dag))
	}
}

func TestViterbiSingleState(t *testing.T) {
	app := NewRandomViterbi(1, 3, 10, 2)
	dag, err := dpx10.Run[float64](app, app.Pattern(),
		dpx10.Places(2), dpx10.WithCodec[float64](dpx10.Float64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range app.Path(dag) {
		if s != 0 {
			t.Fatal("single-state HMM decoded a nonzero state")
		}
	}
}

func TestNWDistributedMatchesSerial(t *testing.T) {
	a, b := seqPair(35, 30)
	app := NewNW(a, b)
	dag, err := dpx10.Run[int32](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	alignedA, alignedB := app.Backtrack(dag)
	if len(alignedA) != len(alignedB) {
		t.Fatalf("global alignment rows differ: %d vs %d", len(alignedA), len(alignedB))
	}
	// Global alignment must consume both strings entirely.
	if strings.ReplaceAll(alignedA, "-", "") != a || strings.ReplaceAll(alignedB, "-", "") != b {
		t.Fatal("global alignment dropped characters")
	}
	// Re-score the alignment.
	var score int32
	for k := 0; k < len(alignedA); k++ {
		switch {
		case alignedA[k] == '-' || alignedB[k] == '-':
			score += app.Gap
		case alignedA[k] == alignedB[k]:
			score += app.Match
		default:
			score += app.Mismatch
		}
	}
	if score != app.Score(dag) {
		t.Fatalf("alignment re-scores to %d, matrix says %d", score, app.Score(dag))
	}
}

func TestNWIdenticalStrings(t *testing.T) {
	app := NewNW("ACGTACGT", "ACGTACGT")
	dag, err := dpx10.Run[int32](app, app.Pattern(), dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Score(dag); got != 16 { // 8 matches x 2
		t.Fatalf("score = %d, want 16", got)
	}
}

func TestLCSubstrDistributedMatchesSerial(t *testing.T) {
	a, b := seqPair(60, 50)
	app := NewLCSubstr(a, b)
	if err := dpx10.CheckPattern(app.Pattern()); err != nil {
		t.Fatalf("diag-only pattern inconsistent: %v", err)
	}
	dag, err := dpx10.Run[int32](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	sub, n := app.Longest(dag)
	if int32(len(sub)) != n {
		t.Fatalf("substring %q length %d != reported %d", sub, len(sub), n)
	}
	if n > 0 && (!strings.Contains(a, sub) || !strings.Contains(b, sub)) {
		t.Fatalf("%q is not a common substring", sub)
	}
}

func TestLCSubstrKnown(t *testing.T) {
	app := NewLCSubstr("XABCDY", "ZABCDW")
	dag, err := dpx10.Run[int32](app, app.Pattern(), dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	sub, n := app.Longest(dag)
	if sub != "ABCD" || n != 4 {
		t.Fatalf("longest = %q (%d), want ABCD (4)", sub, n)
	}
}

func TestNewAppsSurviveFault(t *testing.T) {
	t.Run("matrixchain", func(t *testing.T) {
		app := NewRandomMatrixChain(24, 30, 9)
		job, err := dpx10.Launch[int64](app, app.Pattern(),
			dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
		if err != nil {
			t.Fatal(err)
		}
		for job.Progress() < 60 {
		}
		job.Kill(2)
		dag, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(dag); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("viterbi", func(t *testing.T) {
		app := NewRandomViterbi(6, 4, 60, 21)
		job, err := dpx10.Launch[float64](app, app.Pattern(),
			dpx10.Places(4), dpx10.WithCodec[float64](dpx10.Float64Codec{}))
		if err != nil {
			t.Fatal(err)
		}
		for job.Progress() < 120 {
		}
		job.Kill(3)
		dag, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(dag); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLCSubstrRandomizedQuick(t *testing.T) {
	// Light property test: for random inputs the distributed longest
	// common substring really occurs in both strings.
	for trial := int64(0); trial < 6; trial++ {
		a := workload.Sequence(25+int(trial), workload.DNA, trial)
		b := workload.Sequence(30, workload.DNA, trial+100)
		app := NewLCSubstr(a, b)
		dag, err := dpx10.Run[int32](app, app.Pattern(),
			dpx10.Places(3), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(dag); err != nil {
			t.Fatal(err)
		}
		sub, _ := app.Longest(dag)
		if sub != "" && (!strings.Contains(a, sub) || !strings.Contains(b, sub)) {
			t.Fatalf("trial %d: %q not common", trial, sub)
		}
	}
}

func TestFloydWarshallPatternConsistent(t *testing.T) {
	for _, n := range []int32{1, 2, 3, 5} {
		fw := NewRandomFloydWarshall(n, 2, 9, 11)
		if err := dpx10.CheckPattern(fw.Pattern()); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestFloydWarshallMatchesSerial(t *testing.T) {
	fw := NewRandomFloydWarshall(14, 4, 20, 8)
	dag, err := dpx10.Run[int64](fw, fw.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Verify(dag); err != nil {
		t.Fatal(err)
	}
	// Self-distances are zero and reachable.
	for i := int32(0); i < fw.N; i++ {
		if d, ok := fw.Dist(dag, i, i); !ok || d != 0 {
			t.Fatalf("Dist(%d,%d) = (%d,%v)", i, i, d, ok)
		}
	}
}

func TestFloydWarshallSurvivesFault(t *testing.T) {
	fw := NewRandomFloydWarshall(12, 3, 15, 5)
	job, err := dpx10.Launch[int64](fw, fw.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	for job.Progress() < 300 {
	}
	job.Kill(2)
	dag, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Verify(dag); err != nil {
		t.Fatal(err)
	}
}

func TestSWLAGBacktrackScoresToBest(t *testing.T) {
	a, b := seqPair(45, 40)
	app := NewSWLAG(a, b)
	dag, err := dpx10.Run[AffineCell](app, app.Pattern(),
		dpx10.Places(3), dpx10.WithCodec[AffineCell](app.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	alignedA, alignedB := app.Backtrack(dag)
	if len(alignedA) != len(alignedB) {
		t.Fatalf("alignment rows differ: %q / %q", alignedA, alignedB)
	}
	// Re-score with affine gap accounting.
	var score int32
	inGapA, inGapB := false, false
	for k := 0; k < len(alignedA); k++ {
		switch {
		case alignedA[k] == '-':
			if inGapA {
				score += app.GapExtend
			} else {
				score += app.GapOpen
			}
			inGapA, inGapB = true, false
		case alignedB[k] == '-':
			if inGapB {
				score += app.GapExtend
			} else {
				score += app.GapOpen
			}
			inGapA, inGapB = false, true
		default:
			inGapA, inGapB = false, false
			if alignedA[k] == alignedB[k] {
				score += app.Match
			} else {
				score += app.Mismatch
			}
		}
	}
	if score != app.Best(dag) {
		t.Fatalf("alignment re-scores to %d, best is %d\n  %s\n  %s", score, app.Best(dag), alignedA, alignedB)
	}
	// The ungapped residues must be subsequences of the inputs.
	if !isSubsequence(strings.ReplaceAll(alignedA, "-", ""), a) ||
		!isSubsequence(strings.ReplaceAll(alignedB, "-", ""), b) {
		t.Fatal("alignment rows are not substrings of the inputs")
	}
}

func TestCYKMatchesSerial(t *testing.T) {
	g := NewRandomCYK(12, 40, 28, 6)
	dag, err := dpx10.Run[uint64](g, g.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[uint64](g.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(dag); err != nil {
		t.Fatal(err)
	}
	if g.Parseable(dag) == 0 {
		t.Fatal("no derivable spans at all (degenerate grammar)")
	}
}

func TestCYKKnownGrammar(t *testing.T) {
	// S -> A B | B A ; A -> 'A' ; B -> 'C'. Nonterminals: S=0, A=1, B=2.
	g := &CYK{
		NT: 3,
		Binary: []CYKBinaryRule{
			{A: 0, B: 1, C: 2},
			{A: 0, B: 2, C: 1},
		},
		Terminals: map[byte]uint64{'A': 1 << 1, 'C': 1 << 2},
		Input:     "AC",
	}
	dag, err := dpx10.Run[uint64](g, g.Pattern(), dpx10.Places(2),
		dpx10.WithCodec[uint64](g.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Accepts(dag) {
		t.Fatal("grammar should accept AC")
	}
	g2 := &CYK{NT: g.NT, Binary: g.Binary, Terminals: g.Terminals, Input: "AA"}
	dag2, err := dpx10.Run[uint64](g2, g2.Pattern(), dpx10.Places(2),
		dpx10.WithCodec[uint64](g2.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Accepts(dag2) {
		t.Fatal("grammar should reject AA")
	}
}

func TestCYKSurvivesFault(t *testing.T) {
	g := NewRandomCYK(10, 30, 32, 13)
	job, err := dpx10.Launch[uint64](g, g.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[uint64](g.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	for job.Progress() < 150 {
	}
	job.Kill(1)
	dag, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(dag); err != nil {
		t.Fatal(err)
	}
}

func TestOBSTMatchesSerial(t *testing.T) {
	app := NewRandomOBST(20, 30, 10)
	dag, err := dpx10.Run[int64](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	// The reconstructed tree must be a valid BST shape: exactly one root,
	// every parent index in range, and re-costing it gives the optimum.
	parent := app.Tree(dag)
	roots := 0
	for k, p := range parent {
		if p == -1 {
			roots++
		} else if p < 0 || p >= app.N() || p == k {
			t.Fatalf("key %d has invalid parent %d", k, p)
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots, want 1", roots)
	}
	if got := treeCost(app, parent); got != app.Cost(dag) {
		t.Fatalf("reconstructed tree costs %d, optimum is %d", got, app.Cost(dag))
	}
}

// treeCost computes Σ freq[k] * depth[k] (depth of root = 1).
func treeCost(app *OBST, parent []int) int64 {
	depth := func(k int) int64 {
		d := int64(1)
		for parent[k] != -1 {
			k = parent[k]
			d++
		}
		return d
	}
	var total int64
	for k := range parent {
		total += app.Freq[k] * depth(k)
	}
	return total
}

func TestOBSTKnown(t *testing.T) {
	// Knuth's classic example (frequencies scaled to integers):
	// keys with f = {4, 2, 6, 3}; optimal cost = 4*2 + 2*3 + 6*1 + 3*2 = 26.
	app, err := NewOBST([]int64{4, 2, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	dag, err := dpx10.Run[int64](app, app.Pattern(), dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Cost(dag); got != 26 {
		t.Fatalf("cost = %d, want 26", got)
	}
}

func TestOBSTRejectsBadInput(t *testing.T) {
	if _, err := NewOBST(nil); err == nil {
		t.Fatal("empty keys accepted")
	}
	if _, err := NewOBST([]int64{3, -1}); err == nil {
		t.Fatal("negative frequency accepted")
	}
}
