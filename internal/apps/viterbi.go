package apps

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/dpx10/dpx10"
)

// Viterbi decodes the most likely hidden-state sequence of an HMM — the
// canonical workload of the RowWave pattern (Figure 5c): row t is the set
// of states at time t and every cell needs the entire previous row:
//
//	v(0,s) = log π_s + log b_s(o_0)
//	v(t,s) = max_{s'} { v(t-1,s') + log a_{s',s} } + log b_s(o_t)
//
// Probabilities are kept in log space; the per-vertex value is the best
// log-probability of any path ending in state s at time t.
type Viterbi struct {
	States int
	// LogInit[s], LogTrans[s'][s], LogEmit[s][o] are log probabilities.
	LogInit  []float64
	LogTrans [][]float64
	LogEmit  [][]float64
	Obs      []int // observation sequence
}

// NewRandomViterbi builds a random but well-formed HMM with `states`
// hidden states, `symbols` observable symbols and an observation
// sequence of length obsLen, deterministic in seed.
func NewRandomViterbi(states, symbols, obsLen int, seed int64) *Viterbi {
	rng := rand.New(rand.NewSource(seed))
	randDist := func(n int) []float64 {
		raw := make([]float64, n)
		sum := 0.0
		for k := range raw {
			raw[k] = rng.Float64() + 0.01
			sum += raw[k]
		}
		for k := range raw {
			raw[k] = math.Log(raw[k] / sum)
		}
		return raw
	}
	v := &Viterbi{
		States:   states,
		LogInit:  randDist(states),
		LogTrans: make([][]float64, states),
		LogEmit:  make([][]float64, states),
		Obs:      make([]int, obsLen),
	}
	for s := 0; s < states; s++ {
		v.LogTrans[s] = randDist(states)
		v.LogEmit[s] = randDist(symbols)
	}
	for t := range v.Obs {
		v.Obs[t] = rng.Intn(symbols)
	}
	return v
}

// Pattern returns the RowWave pattern: len(Obs) rows of States columns.
func (v *Viterbi) Pattern() dpx10.Pattern {
	return dpx10.RowWavePattern(int32(len(v.Obs)), int32(v.States))
}

// Compute implements the log-space recurrence; j is the state index.
func (v *Viterbi) Compute(i, j int32, deps []dpx10.Cell[float64]) float64 {
	if i == 0 {
		return v.LogInit[j] + v.LogEmit[j][v.Obs[0]]
	}
	best := math.Inf(-1)
	for _, d := range deps { // the whole previous row
		if cand := d.Value + v.LogTrans[d.ID.J][j]; cand > best {
			best = cand
		}
	}
	return best + v.LogEmit[j][v.Obs[i]]
}

// AppFinished is a no-op; use Best and Path.
func (v *Viterbi) AppFinished(*dpx10.Dag[float64]) {}

// Best returns the log-probability of the most likely path.
func (v *Viterbi) Best(dag *dpx10.Dag[float64]) float64 {
	t := int32(len(v.Obs)) - 1
	best := math.Inf(-1)
	for s := int32(0); s < int32(v.States); s++ {
		if p := dag.Result(t, s); p > best {
			best = p
		}
	}
	return best
}

// Path backtracks the most likely hidden-state sequence.
func (v *Viterbi) Path(dag *dpx10.Dag[float64]) []int {
	T := len(v.Obs)
	path := make([]int, T)
	// Last state: argmax of the final row.
	best := math.Inf(-1)
	for s := 0; s < v.States; s++ {
		if p := dag.Result(int32(T-1), int32(s)); p > best {
			best, path[T-1] = p, s
		}
	}
	// Walk backwards, picking any predecessor that reproduces the value.
	for t := T - 1; t > 0; t-- {
		cur := path[t]
		target := dag.Result(int32(t), int32(cur)) - v.LogEmit[cur][v.Obs[t]]
		found := false
		for s := 0; s < v.States; s++ {
			if approxEq(dag.Result(int32(t-1), int32(s))+v.LogTrans[s][cur], target) {
				path[t-1] = s
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("viterbi: no predecessor reproduces v(%d,%d)", t, cur))
		}
	}
	return path
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// Serial computes the trellis with nested loops.
func (v *Viterbi) Serial() [][]float64 {
	T := len(v.Obs)
	t := make([][]float64, T)
	for i := range t {
		t[i] = make([]float64, v.States)
	}
	for s := 0; s < v.States; s++ {
		t[0][s] = v.LogInit[s] + v.LogEmit[s][v.Obs[0]]
	}
	for i := 1; i < T; i++ {
		for s := 0; s < v.States; s++ {
			best := math.Inf(-1)
			for sp := 0; sp < v.States; sp++ {
				if cand := t[i-1][sp] + v.LogTrans[sp][s]; cand > best {
					best = cand
				}
			}
			t[i][s] = best + v.LogEmit[s][v.Obs[i]]
		}
	}
	return t
}

// Verify checks the distributed trellis against Serial. Floating-point
// values compare within a relative tolerance: both sides perform the same
// operations in the same order per cell, but tolerance keeps the check
// robust.
func (v *Viterbi) Verify(dag *dpx10.Dag[float64]) error {
	want := v.Serial()
	for i := 0; i < len(v.Obs); i++ {
		for s := 0; s < v.States; s++ {
			got := dag.Result(int32(i), int32(s))
			if !approxEq(got, want[i][s]) {
				return fmt.Errorf("viterbi: v(%d,%d) = %g, want %g", i, s, got, want[i][s])
			}
		}
	}
	return nil
}
