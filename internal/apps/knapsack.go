package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

// Knapsack is the 0/1 knapsack problem, the paper's custom-pattern demo
// (§VII-B) and fourth evaluation application:
//
//	m(i,j) = m(i-1,j)                              if w_i > j
//	m(i,j) = max{ m(i-1,j), m(i-1,j-w_i) + v_i }   if w_i <= j
//
// over an (items+1)×(capacity+1) matrix with the weight-dependent
// KnapsackPattern of Figure 8.
type Knapsack struct {
	Weights  []int32
	Values   []int32
	Capacity int32
}

// NewKnapsack builds the app for explicit items.
func NewKnapsack(weights, values []int32, capacity int32) (*Knapsack, error) {
	if len(weights) != len(values) {
		return nil, fmt.Errorf("knapsack: %d weights vs %d values", len(weights), len(values))
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("knapsack: no items")
	}
	return &Knapsack{Weights: weights, Values: values, Capacity: capacity}, nil
}

// NewRandomKnapsack builds an n-item instance with weights in [1, maxW]
// and values in [1, maxV], deterministic in seed.
func NewRandomKnapsack(n int, maxW, maxV, capacity int32, seed int64) *Knapsack {
	return &Knapsack{
		Weights:  workload.Ints(n, maxW, seed),
		Values:   workload.Ints(n, maxV, seed+1),
		Capacity: capacity,
	}
}

// Pattern returns the weight-dependent custom pattern (Figure 8).
func (k *Knapsack) Pattern() (dpx10.Pattern, error) {
	return dpx10.KnapsackPattern(k.Weights, k.Capacity)
}

// Compute implements the knapsack recurrence; row 0 is zero.
func (k *Knapsack) Compute(i, j int32, deps []dpx10.Cell[int64]) int64 {
	if i == 0 {
		return 0
	}
	skip := mustDep(deps, i-1, j)
	if w := k.Weights[i-1]; w <= j {
		take := mustDep(deps, i-1, j-w) + int64(k.Values[i-1])
		return max64(skip, take)
	}
	return skip
}

// AppFinished is a no-op; use Best and Chosen.
func (k *Knapsack) AppFinished(*dpx10.Dag[int64]) {}

// Best returns the maximum attainable value.
func (k *Knapsack) Best(dag *dpx10.Dag[int64]) int64 {
	return dag.Result(int32(len(k.Weights)), k.Capacity)
}

// Chosen backtracks the selected item indexes (0-based), ascending.
func (k *Knapsack) Chosen(dag *dpx10.Dag[int64]) []int {
	var picked []int
	j := k.Capacity
	for i := int32(len(k.Weights)); i > 0; i-- {
		if dag.Result(i, j) != dag.Result(i-1, j) {
			picked = append(picked, int(i-1))
			j -= k.Weights[i-1]
		}
	}
	for a, b := 0, len(picked)-1; a < b; a, b = a+1, b-1 {
		picked[a], picked[b] = picked[b], picked[a]
	}
	return picked
}

// Serial computes the full table with nested loops.
func (k *Knapsack) Serial() [][]int64 {
	n := len(k.Weights)
	m := make([][]int64, n+1)
	for i := range m {
		m[i] = make([]int64, k.Capacity+1)
	}
	for i := 1; i <= n; i++ {
		for j := int32(0); j <= k.Capacity; j++ {
			m[i][j] = m[i-1][j]
			if w := k.Weights[i-1]; w <= j {
				if take := m[i-1][j-w] + int64(k.Values[i-1]); take > m[i][j] {
					m[i][j] = take
				}
			}
		}
	}
	return m
}

// Verify checks the distributed result cell by cell against Serial.
func (k *Knapsack) Verify(dag *dpx10.Dag[int64]) error {
	want := k.Serial()
	for i := 0; i <= len(k.Weights); i++ {
		for j := int32(0); j <= k.Capacity; j++ {
			if got := dag.Result(int32(i), j); got != want[i][j] {
				return fmt.Errorf("knapsack: m(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
