package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

// FloydWarshall computes all-pairs shortest paths — a demonstration that
// the framework's 2-D vertex space expresses DPs beyond the paper's
// 2D/0D class by embedding: stage k of the classic recurrence
//
//	D_k(i,j) = min{ D_{k-1}(i,j), D_{k-1}(i,k) + D_{k-1}(k,j) }
//
// becomes matrix row k, with the n×n distance matrix flattened into the
// columns. Cell (k, i·n+j) depends on three cells of row k-1 — a custom
// pattern with data-dependent column offsets, like the knapsack's.
type FloydWarshall struct {
	N    int32   // vertices in the graph
	Edge []int64 // row-major adjacency: Edge[i*N+j], -1 = no edge
}

// fwInf is the "no path" distance; high but addition-safe.
const fwInf int64 = 1 << 40

// NewRandomFloydWarshall builds a random directed graph with n vertices
// where each ordered pair has an edge with probability ~degree/n and
// weight in [1, maxW], deterministic in seed.
func NewRandomFloydWarshall(n int32, degree int, maxW int64, seed int64) *FloydWarshall {
	fw := &FloydWarshall{N: n, Edge: make([]int64, int(n)*int(n))}
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			idx := int(i)*int(n) + int(j)
			switch {
			case i == j:
				fw.Edge[idx] = 0
			case workload.Hash2(i, j, seed)%uint64(n) < uint64(degree):
				fw.Edge[idx] = int64(workload.Hash2(j, i, seed)%uint64(maxW)) + 1
			default:
				fw.Edge[idx] = -1
			}
		}
	}
	return fw
}

// fwPattern is the stage-embedded dependency structure: row 0 has no
// dependencies (the adjacency matrix); cell (k, i·n+j) for k >= 1 needs
// (k-1, i·n+j), (k-1, i·n+(k-1)) and (k-1, (k-1)·n+j) — note stage k
// relaxes through graph vertex k-1.
type fwPattern struct{ n int32 }

func (p fwPattern) Bounds() (int32, int32) { return p.n + 1, p.n * p.n }

func (p fwPattern) Dependencies(k, c int32, buf []dpx10.VertexID) []dpx10.VertexID {
	if k == 0 {
		return buf
	}
	i, j := c/p.n, c%p.n
	v := k - 1 // the vertex being relaxed through
	buf = append(buf, dpx10.VertexID{I: k - 1, J: c})
	if viaOut := i*p.n + v; viaOut != c {
		buf = append(buf, dpx10.VertexID{I: k - 1, J: viaOut})
	}
	if viaIn := v*p.n + j; viaIn != c && viaIn != i*p.n+v {
		buf = append(buf, dpx10.VertexID{I: k - 1, J: viaIn})
	}
	return buf
}

func (p fwPattern) AntiDependencies(k, c int32, buf []dpx10.VertexID) []dpx10.VertexID {
	if k >= p.n {
		return buf
	}
	i, j := c/p.n, c%p.n
	v := k // stage k+1 relaxes through vertex k
	buf = append(buf, dpx10.VertexID{I: k + 1, J: c})
	if j == v {
		// (k, i·n+v) feeds every (k+1, i·n+j') in row i except itself.
		for jp := int32(0); jp < p.n; jp++ {
			if t := i*p.n + jp; t != c {
				buf = append(buf, dpx10.VertexID{I: k + 1, J: t})
			}
		}
	}
	if i == v {
		// (k, v·n+j) feeds every (k+1, i'·n+j) in column j except those
		// already listed.
		for ip := int32(0); ip < p.n; ip++ {
			t := ip*p.n + j
			if t == c || (j == v && ip == i) {
				continue
			}
			// Skip targets already emitted by the row-i loop above.
			if j == v && t/p.n == i {
				continue
			}
			buf = append(buf, dpx10.VertexID{I: k + 1, J: t})
		}
	}
	return buf
}

// Pattern returns the stage-embedded custom pattern.
func (fw *FloydWarshall) Pattern() dpx10.Pattern { return fwPattern{n: fw.N} }

// Compute implements the staged relaxation; -1 encodes "unreachable" in
// the adjacency row and fwInf internally.
func (fw *FloydWarshall) Compute(k, c int32, deps []dpx10.Cell[int64]) int64 {
	n := fw.N
	if k == 0 {
		if e := fw.Edge[c]; e >= 0 {
			return e
		}
		return fwInf
	}
	i, j := c/n, c%n
	v := k - 1
	cur := mustDep(deps, k-1, c)
	out, okOut := depValue(deps, k-1, i*n+v)
	if !okOut {
		out = cur // c == i·n+v: the dependency is the cell itself
	}
	in, okIn := depValue(deps, k-1, v*n+j)
	if !okIn {
		if v*n+j == c {
			in = cur
		} else {
			in = out // v·n+j == i·n+v only when i == j == v
		}
	}
	if via := out + in; via < cur {
		return via
	}
	return cur
}

// AppFinished is a no-op; use Dist.
func (fw *FloydWarshall) AppFinished(*dpx10.Dag[int64]) {}

// Dist returns the shortest-path distance from i to j after a completed
// run; ok reports reachability.
func (fw *FloydWarshall) Dist(dag *dpx10.Dag[int64], i, j int32) (int64, bool) {
	v := dag.Result(fw.N, i*fw.N+j)
	return v, v < fwInf
}

// Serial computes all-pairs shortest paths with the classic triple loop.
func (fw *FloydWarshall) Serial() []int64 {
	n := int(fw.N)
	d := make([]int64, n*n)
	for idx, e := range fw.Edge {
		if e >= 0 {
			d[idx] = e
		} else {
			d[idx] = fwInf
		}
	}
	for v := 0; v < n; v++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if via := d[i*n+v] + d[v*n+j]; via < d[i*n+j] {
					d[i*n+j] = via
				}
			}
		}
	}
	return d
}

// Verify checks the final stage against Serial.
func (fw *FloydWarshall) Verify(dag *dpx10.Dag[int64]) error {
	want := fw.Serial()
	n := fw.N
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			if got := dag.Result(n, i*n+j); got != want[i*int32(n)+j] {
				return fmt.Errorf("floydwarshall: D(%d,%d) = %d, want %d", i, j, got, want[i*int32(n)+j])
			}
		}
	}
	return nil
}
