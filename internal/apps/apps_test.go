package apps

import (
	"testing"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/workload"
)

func seqPair(n, m int) (string, string) {
	return workload.Sequence(n, workload.DNA, 11), workload.Sequence(m, workload.DNA, 23)
}

func TestLCSDistributedMatchesSerial(t *testing.T) {
	a, b := seqPair(40, 33)
	app := NewLCS(a, b)
	dag, err := dpx10.Run[int32](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	sub := app.Backtrack(dag)
	if int32(len(sub)) != app.Length(dag) {
		t.Fatalf("backtrack length %d != LCS length %d", len(sub), app.Length(dag))
	}
	if !isSubsequence(sub, a) || !isSubsequence(sub, b) {
		t.Fatalf("%q is not a common subsequence of inputs", sub)
	}
}

func isSubsequence(sub, s string) bool {
	k := 0
	for i := 0; i < len(s) && k < len(sub); i++ {
		if s[i] == sub[k] {
			k++
		}
	}
	return k == len(sub)
}

func TestSWDistributedMatchesSerial(t *testing.T) {
	a, b := seqPair(35, 42)
	app := NewSW(a, b)
	dag, err := dpx10.Run[int32](app, app.Pattern(),
		dpx10.Places(3), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	alignedA, alignedB := app.Backtrack(dag)
	if len(alignedA) != len(alignedB) {
		t.Fatalf("alignment rows differ in length: %q vs %q", alignedA, alignedB)
	}
	// Re-score the alignment; it must equal the best matrix score.
	best, _ := app.Best(dag)
	var score int32
	for k := 0; k < len(alignedA); k++ {
		switch {
		case alignedA[k] == '-' || alignedB[k] == '-':
			score += app.Gap
		case alignedA[k] == alignedB[k]:
			score += app.Match
		default:
			score += app.Mismatch
		}
	}
	if score != best {
		t.Fatalf("alignment re-scores to %d, matrix best is %d", score, best)
	}
}

func TestSWKnownAlignment(t *testing.T) {
	// Classic textbook case: identical substrings align perfectly.
	app := NewSW("AAACCCTTT", "GGCCCGG")
	dag, err := dpx10.Run[int32](app, app.Pattern(), dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	best, _ := app.Best(dag)
	if best != 6 { // CCC aligned: 3 matches x 2
		t.Fatalf("best = %d, want 6", best)
	}
	a, b := app.Backtrack(dag)
	if a != "CCC" || b != "CCC" {
		t.Fatalf("alignment = %q/%q, want CCC/CCC", a, b)
	}
}

func TestSWLAGDistributedMatchesSerial(t *testing.T) {
	a, b := seqPair(30, 30)
	app := NewSWLAG(a, b)
	dag, err := dpx10.Run[AffineCell](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[AffineCell](app.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	if app.Best(dag) <= 0 {
		t.Fatal("no positive local alignment found in random DNA (implausible)")
	}
}

func TestSWLAGLinearGapDegeneratesToSW(t *testing.T) {
	// With open == extend == SW gap, the affine H matrix equals plain SW.
	a, b := seqPair(25, 28)
	affine := NewSWLAG(a, b)
	affine.GapOpen, affine.GapExtend = SWGap, SWGap
	dag, err := dpx10.Run[AffineCell](affine, affine.Pattern(),
		dpx10.Places(3), dpx10.WithCodec[AffineCell](affine.Codec()))
	if err != nil {
		t.Fatal(err)
	}
	want := NewSW(a, b).Serial()
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			if got := dag.Result(int32(i), int32(j)).H; got != want[i][j] {
				t.Fatalf("H(%d,%d) = %d, want %d (linear-gap degeneration)", i, j, got, want[i][j])
			}
		}
	}
}

func TestAffineCodecRoundTrip(t *testing.T) {
	c := AffineCodec{}
	for _, v := range []AffineCell{{}, {1, -2, 3}, {negInf, negInf, 1 << 30}} {
		b := c.Encode(nil, v)
		if len(b) != 12 {
			t.Fatalf("encoded width %d, want 12", len(b))
		}
		got, n, err := c.Decode(b)
		if err != nil || n != 12 || got != v {
			t.Fatalf("round trip %+v -> %+v (n=%d err=%v)", v, got, n, err)
		}
	}
	if _, _, err := c.Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short decode accepted")
	}
}

func TestMTPDistributedMatchesSerial(t *testing.T) {
	app := NewMTP(30, 25, 100, 5)
	dag, err := dpx10.Run[int64](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	path := app.Path(dag)
	if path[0] != (dpx10.VertexID{I: 0, J: 0}) || path[len(path)-1] != (dpx10.VertexID{I: 29, J: 24}) {
		t.Fatalf("path endpoints wrong: %v .. %v", path[0], path[len(path)-1])
	}
	if len(path) != 30+25-1 {
		t.Fatalf("monotone path length = %d, want %d", len(path), 30+25-1)
	}
	// Re-score the path; it must equal the best value.
	var total int64
	for k := 1; k < len(path); k++ {
		p, q := path[k-1], path[k]
		total += app.Weight(p.I, p.J, q.I, q.J)
	}
	if total != app.Best(dag) {
		t.Fatalf("path re-scores to %d, matrix best is %d", total, app.Best(dag))
	}
}

func TestLPSDistributedMatchesSerial(t *testing.T) {
	s := workload.Sequence(40, workload.DNA, 9)
	app := NewLPS(s)
	dag, err := dpx10.Run[int32](app, app.Pattern(),
		dpx10.Places(4), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	pal := app.Subsequence(dag)
	if int32(len(pal)) != app.Length(dag) {
		t.Fatalf("backtrack length %d != LPS length %d", len(pal), app.Length(dag))
	}
	if rev := reverseString(pal); rev != pal {
		t.Fatalf("%q is not a palindrome", pal)
	}
	if !isSubsequence(pal, s) {
		t.Fatalf("%q is not a subsequence of input", pal)
	}
}

func reverseString(s string) string {
	b := []byte(s)
	reverse(b)
	return string(b)
}

func TestLPSKnown(t *testing.T) {
	app := NewLPS("CHARACTER")
	dag, err := dpx10.Run[int32](app, app.Pattern(), dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Length(dag); got != 5 { // CARAC
		t.Fatalf("LPS(CHARACTER) = %d, want 5", got)
	}
}

func TestKnapsackDistributedMatchesSerial(t *testing.T) {
	app := NewRandomKnapsack(12, 9, 20, 45, 31)
	pat, err := app.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	dag, err := dpx10.Run[int64](app, pat,
		dpx10.Places(4), dpx10.WithCodec[int64](dpx10.Int64Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
	chosen := app.Chosen(dag)
	var wsum, vsum int64
	for _, idx := range chosen {
		wsum += int64(app.Weights[idx])
		vsum += int64(app.Values[idx])
	}
	if wsum > int64(app.Capacity) {
		t.Fatalf("chosen items weigh %d > capacity %d", wsum, app.Capacity)
	}
	if vsum != app.Best(dag) {
		t.Fatalf("chosen items value %d != best %d", vsum, app.Best(dag))
	}
}

func TestKnapsackKnown(t *testing.T) {
	app, err := NewKnapsack([]int32{1, 3, 4, 5}, []int32{1, 4, 5, 7}, 7)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := app.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	dag, err := dpx10.Run[int64](app, pat, dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Best(dag); got != 9 { // items {3,4}: value 4+5
		t.Fatalf("best = %d, want 9", got)
	}
}

func TestKnapsackRejectsBadInput(t *testing.T) {
	if _, err := NewKnapsack([]int32{1}, []int32{1, 2}, 5); err == nil {
		t.Fatal("mismatched weights/values accepted")
	}
	if _, err := NewKnapsack(nil, nil, 5); err == nil {
		t.Fatal("empty item list accepted")
	}
}

func TestEditDistanceDistributedMatchesSerial(t *testing.T) {
	a, b := seqPair(30, 36)
	app := NewEditDistance(a, b)
	dag, err := dpx10.Run[int32](app, app.Pattern(),
		dpx10.Places(3), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(dag); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceKnown(t *testing.T) {
	app := NewEditDistance("kitten", "sitting")
	dag, err := dpx10.Run[int32](app, app.Pattern(), dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Distance(dag); got != 3 {
		t.Fatalf("edit distance = %d, want 3", got)
	}
}

func TestAppsSurviveFault(t *testing.T) {
	// Every evaluation app completes correctly across a mid-run failure.
	a, b := seqPair(40, 40)
	t.Run("swlag", func(t *testing.T) {
		app := NewSWLAG(a, b)
		job, err := dpx10.Launch[AffineCell](app, app.Pattern(),
			dpx10.Places(4), dpx10.WithCodec[AffineCell](app.Codec()))
		if err != nil {
			t.Fatal(err)
		}
		for job.Progress() < 100 {
		}
		job.Kill(2)
		dag, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(dag); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("lps", func(t *testing.T) {
		app := NewLPS(workload.Sequence(45, workload.DNA, 3))
		job, err := dpx10.Launch[int32](app, app.Pattern(),
			dpx10.Places(4), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
		if err != nil {
			t.Fatal(err)
		}
		for job.Progress() < 120 {
		}
		job.Kill(1)
		dag, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(dag); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMustDepPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mustDep on missing dependency did not panic")
		}
	}()
	mustDep([]dpx10.Cell[int32]{}, 1, 1)
}

func TestDepValue(t *testing.T) {
	deps := []dpx10.Cell[int32]{{ID: dpx10.VertexID{I: 1, J: 2}, Value: 7}}
	if v, ok := depValue(deps, 1, 2); !ok || v != 7 {
		t.Fatalf("depValue = (%d,%v)", v, ok)
	}
	if _, ok := depValue(deps, 2, 1); ok {
		t.Fatal("depValue found a missing dependency")
	}
}
