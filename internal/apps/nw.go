package apps

import (
	"fmt"

	"github.com/dpx10/dpx10"
)

// NW is Needleman-Wunsch global sequence alignment — Smith-Waterman's
// global counterpart, on the same Diagonal pattern but without the
// clamp at zero and with gap-scaled borders:
//
//	D(i,0) = i·gap, D(0,j) = j·gap
//	D(i,j) = max{ D(i-1,j-1) + s(a_i,b_j), D(i-1,j) + gap, D(i,j-1) + gap }
type NW struct {
	A, B                 string
	Match, Mismatch, Gap int32
}

// NewNW builds the app with the default scoring (+2 / -1 / -1).
func NewNW(a, b string) *NW {
	return &NW{A: a, B: b, Match: 2, Mismatch: -1, Gap: -1}
}

// Pattern returns the Diagonal pattern sized for the sequences.
func (s *NW) Pattern() dpx10.Pattern {
	return dpx10.DiagonalPattern(int32(len(s.A))+1, int32(len(s.B))+1)
}

func (s *NW) score(i, j int32) int32 {
	if s.A[i-1] == s.B[j-1] {
		return s.Match
	}
	return s.Mismatch
}

// Compute implements the global-alignment recurrence.
func (s *NW) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	if i == 0 {
		return j * s.Gap
	}
	if j == 0 {
		return i * s.Gap
	}
	return max32(
		mustDep(deps, i-1, j-1)+s.score(i, j),
		mustDep(deps, i-1, j)+s.Gap,
		mustDep(deps, i, j-1)+s.Gap,
	)
}

// AppFinished is a no-op; use Score and Backtrack.
func (s *NW) AppFinished(*dpx10.Dag[int32]) {}

// Score returns the optimal global alignment score.
func (s *NW) Score(dag *dpx10.Dag[int32]) int32 {
	return dag.Result(int32(len(s.A)), int32(len(s.B)))
}

// Backtrack reconstructs one optimal global alignment.
func (s *NW) Backtrack(dag *dpx10.Dag[int32]) (alignedA, alignedB string) {
	var ra, rb []byte
	i, j := int32(len(s.A)), int32(len(s.B))
	for i > 0 || j > 0 {
		v := dag.Result(i, j)
		switch {
		case i > 0 && j > 0 && v == dag.Result(i-1, j-1)+s.score(i, j):
			ra = append(ra, s.A[i-1])
			rb = append(rb, s.B[j-1])
			i, j = i-1, j-1
		case i > 0 && v == dag.Result(i-1, j)+s.Gap:
			ra = append(ra, s.A[i-1])
			rb = append(rb, '-')
			i--
		default:
			ra = append(ra, '-')
			rb = append(rb, s.B[j-1])
			j--
		}
	}
	reverse(ra)
	reverse(rb)
	return string(ra), string(rb)
}

// Serial computes the full matrix with nested loops.
func (s *NW) Serial() [][]int32 {
	d := make([][]int32, len(s.A)+1)
	for i := range d {
		d[i] = make([]int32, len(s.B)+1)
		d[i][0] = int32(i) * s.Gap
	}
	for j := 0; j <= len(s.B); j++ {
		d[0][j] = int32(j) * s.Gap
	}
	for i := 1; i <= len(s.A); i++ {
		for j := 1; j <= len(s.B); j++ {
			d[i][j] = max32(
				d[i-1][j-1]+s.score(int32(i), int32(j)),
				d[i-1][j]+s.Gap,
				d[i][j-1]+s.Gap,
			)
		}
	}
	return d
}

// Verify checks the distributed result cell by cell against Serial.
func (s *NW) Verify(dag *dpx10.Dag[int32]) error {
	want := s.Serial()
	for i := 0; i <= len(s.A); i++ {
		for j := 0; j <= len(s.B); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				return fmt.Errorf("nw: D(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
