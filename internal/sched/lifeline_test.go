package sched

import "testing"

// TestLifelineEdgesShape pins the structural contract: deterministic,
// in-range, no self-edges, no duplicates, and at least one edge whenever
// there is more than one place.
func TestLifelineEdgesShape(t *testing.T) {
	for places := 1; places <= 33; places++ {
		for _, z := range []int{0, 1, 2, 3} {
			for self := 0; self < places; self++ {
				edges := LifelineEdges(self, places, z)
				if places == 1 {
					if len(edges) != 0 {
						t.Fatalf("places=1: edges = %v, want none", edges)
					}
					continue
				}
				if len(edges) == 0 {
					t.Fatalf("places=%d z=%d self=%d: no edges", places, z, self)
				}
				seen := map[int]bool{}
				for _, e := range edges {
					if e < 0 || e >= places {
						t.Fatalf("places=%d z=%d self=%d: edge %d out of range", places, z, self, e)
					}
					if e == self {
						t.Fatalf("places=%d z=%d self=%d: self-edge", places, z, self)
					}
					if seen[e] {
						t.Fatalf("places=%d z=%d self=%d: duplicate edge %d", places, z, self, e)
					}
					seen[e] = true
				}
				again := LifelineEdges(self, places, z)
				if len(again) != len(edges) {
					t.Fatalf("places=%d z=%d self=%d: nondeterministic", places, z, self)
				}
				for k := range edges {
					if edges[k] != again[k] {
						t.Fatalf("places=%d z=%d self=%d: nondeterministic", places, z, self)
					}
				}
			}
		}
	}
}

// TestLifelineEdgesConnected asserts the directed lifeline graph is
// strongly connected for every place count the runtime will see — the
// property that lets pushed work diffuse from any place to any other.
func TestLifelineEdgesConnected(t *testing.T) {
	for places := 2; places <= 33; places++ {
		for _, z := range []int{0, 2, 3} {
			adj := make([][]int, places)
			for p := 0; p < places; p++ {
				adj[p] = LifelineEdges(p, places, z)
			}
			for src := 0; src < places; src++ {
				reach := make([]bool, places)
				reach[src] = true
				queue := []int{src}
				for len(queue) > 0 {
					p := queue[0]
					queue = queue[1:]
					for _, q := range adj[p] {
						if !reach[q] {
							reach[q] = true
							queue = append(queue, q)
						}
					}
				}
				for q := 0; q < places; q++ {
					if !reach[q] {
						t.Fatalf("places=%d z=%d: %d cannot reach %d over lifelines", places, z, src, q)
					}
				}
			}
		}
	}
}

// TestDefaultLifelineFanout pins the binary-hypercube default.
func TestDefaultLifelineFanout(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for places, want := range cases {
		if got := DefaultLifelineFanout(places); got != want {
			t.Errorf("DefaultLifelineFanout(%d) = %d, want %d", places, got, want)
		}
	}
}
