package sched

import (
	"testing"

	"github.com/dpx10/dpx10/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: worker deques and
// tile-readiness notifiers must all be drained once the tests finish.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
