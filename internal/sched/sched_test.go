package sched

import (
	"testing"

	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dist"
)

func allAlive(int) bool { return true }

func deps(ids ...[2]int32) []dag.VertexID {
	out := make([]dag.VertexID, len(ids))
	for k, id := range ids {
		out[k] = dag.VertexID{I: id[0], J: id[1]}
	}
	return out
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"local", "random", "mincomm"} {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%s): %v", name, err)
		}
		if s.String() != name {
			t.Fatalf("round trip %s -> %s", name, s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("accepted bogus strategy")
	}
}

func TestLocalAlwaysOwner(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 4)
	pk := NewPicker(Local, d, allAlive, 4, 1)
	for i := int32(0); i < 8; i++ {
		owner := d.Place(i, 0)
		if got := pk.Pick(owner, i, 0, deps([2]int32{0, 0})); got != owner {
			t.Fatalf("Local picked %d, owner %d", got, owner)
		}
	}
}

func TestRandomStaysAlive(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 4)
	alive := func(p int) bool { return p != 2 }
	pk := NewPicker(Random, d, alive, 4, 7)
	counts := map[int]int{}
	for n := 0; n < 400; n++ {
		p := pk.Pick(1, 4, 4, nil)
		counts[p]++
		if p == 2 {
			t.Fatal("Random picked a dead place")
		}
	}
	if len(counts) < 3 {
		t.Fatalf("Random only used places %v; expected spread over survivors", counts)
	}
}

func TestMinCommPrefersDependencyCluster(t *testing.T) {
	// Rows 0..1 -> place 0, rows 2..3 -> place 1 etc.
	d := dist.NewBlockRow(8, 8, 4)
	pk := NewPicker(MinComm, d, allAlive, 4, 1)
	// Vertex owned by place 3 with both dependencies on place 0: executing
	// at place 0 costs one write-back (4 bytes) vs two fetches (8 bytes).
	got := pk.Pick(3, 7, 7, deps([2]int32{0, 0}, [2]int32{1, 1}))
	if got != 0 {
		t.Fatalf("MinComm picked %d, want 0 (dependency cluster)", got)
	}
}

func TestMinCommPrefersOwnerOnTie(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 4)
	pk := NewPicker(MinComm, d, allAlive, 4, 1)
	// One dependency on place 0, owner place 1: both choices move exactly
	// one value (fetch vs write-back), so the owner must win the tie.
	got := pk.Pick(1, 2, 2, deps([2]int32{0, 0}))
	if got != 1 {
		t.Fatalf("MinComm picked %d on a tie, want owner 1", got)
	}
}

func TestMinCommAllLocalStaysHome(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 2)
	pk := NewPicker(MinComm, d, allAlive, 4, 1)
	owner := d.Place(1, 1)
	got := pk.Pick(owner, 1, 1, deps([2]int32{0, 1}, [2]int32{1, 0}, [2]int32{0, 0}))
	if got != owner {
		t.Fatalf("MinComm migrated a fully local vertex to %d", got)
	}
}

func TestMinCommSkipsDeadCandidates(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 4)
	alive := func(p int) bool { return p != 0 }
	pk := NewPicker(MinComm, d, alive, 4, 1)
	got := pk.Pick(3, 7, 7, deps([2]int32{0, 0}, [2]int32{1, 1}))
	if got == 0 {
		t.Fatal("MinComm picked the dead place")
	}
}

func TestCommCostModel(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 4)
	pk := NewPicker(MinComm, d, allAlive, 10, 1)
	ds := deps([2]int32{0, 0}, [2]int32{2, 0}) // owners: 0 and 1
	if got := pk.CommCost(0, 3, ds); got != 20 {
		t.Fatalf("cost at 0 = %d, want 20 (one fetch + write-back)", got)
	}
	if got := pk.CommCost(3, 3, ds); got != 20 {
		t.Fatalf("cost at owner = %d, want 20 (two fetches)", got)
	}
	if got := pk.CommCost(1, 3, ds); got != 20 {
		t.Fatalf("cost at 1 = %d, want 20", got)
	}
}

func TestRebind(t *testing.T) {
	d := dist.NewBlockRow(8, 8, 4)
	pk := NewPicker(MinComm, d, allAlive, 4, 1)
	rd, err := d.Restrict(func(p int) bool { return p != 3 })
	if err != nil {
		t.Fatal(err)
	}
	pk.Rebind(rd)
	got := pk.Pick(2, 7, 7, deps([2]int32{0, 0}))
	if got == 3 {
		t.Fatal("picker still routes to a place absent from the new dist")
	}
}
