package sched

// Lifeline graph (GLB's cyclic hypercube, Saraswat et al.): places are
// numbered in base b with z digits, where b is the smallest integer with
// b^z >= places, and each place has one outgoing lifeline edge per digit
// position — to the place with that digit incremented mod b, wrapping
// further past any number >= places so every edge lands on a real place.
// The graph is deterministic from (places, z) alone, so every place
// derives the same topology without coordination, and the per-dimension
// increment cycles make it strongly connected: pushed work can diffuse
// from any place to any other along parked lifelines.

// DefaultLifelineFanout returns the default number of lifeline edges per
// place: the smallest z with 2^z >= places (a binary hypercube), the shape
// GLB found robust across scales.
func DefaultLifelineFanout(places int) int {
	z := 1
	for 1<<z < places {
		z++
	}
	return z
}

// LifelineEdges returns place self's outgoing lifeline edges in the cyclic
// hypercube over places. z <= 0 selects DefaultLifelineFanout. The result
// is deterministic, contains no self-edge and no duplicates, and is empty
// only when places == 1.
func LifelineEdges(self, places, z int) []int {
	if places <= 1 {
		return nil
	}
	if z <= 0 {
		z = DefaultLifelineFanout(places)
	}
	if z > places-1 {
		z = places - 1
	}
	b := 2
	for pow(b, z) < places {
		b++
	}
	edges := make([]int, 0, z)
	for k := 0; k < z; k++ {
		step := pow(b, k)
		digit := (self / step) % b
		// Increment the digit mod b; wrap past candidates beyond the place
		// count so the edge always lands on a real, distinct place.
		for t := 1; t < b; t++ {
			d := (digit + t) % b
			cand := self + (d-digit)*step
			if cand >= places || cand == self {
				continue
			}
			if !contains(edges, cand) {
				edges = append(edges, cand)
			}
			break
		}
	}
	return edges
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
	}
	return p
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
