// Package sched implements DPX10's vertex scheduling strategies
// (paper §VI-C, §VI-E).
//
// When a vertex becomes ready, its owning place decides where the
// compute() call runs:
//
//   - Local: on the owner itself — the paper's default, no extra decision
//     cost, dependencies may need remote fetches.
//   - Random: on a uniformly random alive place — a load-scattering
//     baseline, usually worse, kept faithful to the paper.
//   - MinComm: on the place minimizing the total bytes moved — the sum of
//     fetches for dependencies not resident at the execution place plus,
//     when executing away from the owner, the write-back of the result.
//     The paper notes this "introduces some extra overhead and should be
//     used in appropriate scenarios".
package sched

import (
	"fmt"
	"math/rand"

	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dist"
)

// Strategy selects which scheduling policy a run uses.
type Strategy int

const (
	// Local executes every vertex at its owning place (default).
	Local Strategy = iota
	// Random executes each vertex at a uniformly random alive place.
	Random
	// MinComm executes each vertex at the place that minimizes the
	// modeled communication volume.
	MinComm
	// Steal keeps owner-local execution but lets idle workers pull ready
	// vertices from busy places — the work-stealing direction the paper
	// cites as future work (SLAW, X10's work-stealing scheduler).
	Steal
)

// ParseStrategy maps a CLI name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "local":
		return Local, nil
	case "random":
		return Random, nil
	case "mincomm":
		return MinComm, nil
	case "steal":
		return Steal, nil
	}
	return 0, fmt.Errorf("sched: unknown strategy %q (have local, random, mincomm, steal)", name)
}

func (s Strategy) String() string {
	switch s {
	case Local:
		return "local"
	case Random:
		return "random"
	case MinComm:
		return "mincomm"
	case Steal:
		return "steal"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Picker makes per-vertex execution-place decisions for one place's
// worker. It is not safe for concurrent use; each worker thread owns one.
type Picker struct {
	strategy  Strategy
	d         dist.Dist
	alive     func(p int) bool
	valueSize int // modeled bytes to move one vertex value
	rng       *rand.Rand
}

// NewPicker builds a Picker. valueSize is the encoded width of one vertex
// value; seed makes Random reproducible per worker.
func NewPicker(s Strategy, d dist.Dist, alive func(p int) bool, valueSize int, seed int64) *Picker {
	if valueSize <= 0 {
		valueSize = 1
	}
	return &Picker{
		strategy:  s,
		d:         d,
		alive:     alive,
		valueSize: valueSize,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Rebind points the picker at a new distribution (after recovery).
func (pk *Picker) Rebind(d dist.Dist) { pk.d = d }

// Pick returns the place where the ready vertex (i,j), owned by owner,
// should execute. deps are its dependencies.
func (pk *Picker) Pick(owner int, i, j int32, deps []dag.VertexID) int {
	switch pk.strategy {
	case Random:
		places := pk.d.Places()
		// Try a few times to land on an alive place; fall back to owner.
		for t := 0; t < 4; t++ {
			p := places[pk.rng.Intn(len(places))]
			if pk.alive(p) {
				return p
			}
		}
		return owner
	case MinComm:
		return pk.minComm(owner, deps)
	default:
		return owner
	}
}

// PickTile returns the place where a ready tile of n cells, owned by
// owner, should execute — one decision for the whole tile. extDeps are
// the tile's distinct external dependencies (cells outside the tile);
// only MinComm consults them, so other strategies may pass nil.
func (pk *Picker) PickTile(owner, n int, extDeps []dag.VertexID) int {
	switch pk.strategy {
	case Random:
		places := pk.d.Places()
		for t := 0; t < 4; t++ {
			p := places[pk.rng.Intn(len(places))]
			if pk.alive(p) {
				return p
			}
		}
		return owner
	case MinComm:
		best, bestCost := owner, pk.tileCost(owner, owner, n, extDeps)
		for _, dep := range extDeps {
			cand := pk.d.Place(dep.I, dep.J)
			if cand == best || !pk.alive(cand) {
				continue
			}
			cost := pk.tileCost(cand, owner, n, extDeps)
			if cost < bestCost || (cost == bestCost && cand != owner && best != owner && cand < best) {
				best, bestCost = cand, cost
			}
		}
		return best
	default:
		return owner
	}
}

// tileCost models the bytes moved when an n-cell tile owned by owner
// executes at exec: one transfer per external dependency not resident at
// exec, plus — away from the owner — one result write-back per cell.
// Intra-tile values stay in the executing worker's hands either way.
func (pk *Picker) tileCost(exec, owner, n int, extDeps []dag.VertexID) int {
	cost := 0
	for _, dep := range extDeps {
		if pk.d.Place(dep.I, dep.J) != exec {
			cost += pk.valueSize
		}
	}
	if exec != owner {
		cost += n * pk.valueSize
	}
	return cost
}

// minComm evaluates the owner and every dependency owner as candidate
// execution places and returns the cheapest. Cost model: each dependency
// resident elsewhere costs one value transfer; executing away from the
// owner costs one extra transfer to write the result back. Ties favor the
// owner (no migration), then lower place ids for determinism.
func (pk *Picker) minComm(owner int, deps []dag.VertexID) int {
	best, bestCost := owner, pk.commCost(owner, owner, deps)
	for _, dep := range deps {
		cand := pk.d.Place(dep.I, dep.J)
		if cand == best || !pk.alive(cand) {
			continue
		}
		cost := pk.commCost(cand, owner, deps)
		if cost < bestCost || (cost == bestCost && cand != owner && best != owner && cand < best) {
			best, bestCost = cand, cost
		}
	}
	return best
}

// CommCost exposes the MinComm cost model: the modeled bytes moved when
// vertex owned by owner executes at exec with the given dependencies.
func (pk *Picker) CommCost(exec, owner int, deps []dag.VertexID) int {
	return pk.commCost(exec, owner, deps)
}

func (pk *Picker) commCost(exec, owner int, deps []dag.VertexID) int {
	cost := 0
	for _, dep := range deps {
		if pk.d.Place(dep.I, dep.J) != exec {
			cost += pk.valueSize
		}
	}
	if exec != owner {
		cost += pk.valueSize // result write-back
	}
	return cost
}
