package metrics

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzSnapshotWire drives DecodeSnapshot with arbitrary bytes. The
// decoder must be total — return a snapshot or an error, never panic or
// allocate unboundedly — and anything it accepts must survive an
// encode/decode round trip unchanged. Encoder output itself must decode
// back byte-identically (the encoding is canonical: sorted sections,
// sorted vec keys), which the seed corpus plus the re-encode check below
// cover: decode(b) -> encode -> decode must be a fixed point.
func FuzzSnapshotWire(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSnapshot(nil, &Snapshot{Place: 0}))
	full := buildSnapshot()
	f.Add(EncodeSnapshot(nil, full))
	// Hostile section count claiming more entries than bytes exist.
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			return
		}
		// Accepted input (which may list entries in any order, or repeat
		// a name) must re-encode to the canonical form and round-trip.
		re := EncodeSnapshot(nil, s)
		s2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", s, s2)
		}
		if re2 := EncodeSnapshot(nil, s2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding is not a fixed point:\n 1st %x\n 2nd %x", re, re2)
		}
	})
}
