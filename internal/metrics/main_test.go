package metrics

import (
	"testing"

	"github.com/dpx10/dpx10/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: registries and span
// recorders are passive, so anything still alive after the tests is a
// leak.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
