package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestCounterShardsAndValue(t *testing.T) {
	r := New(0)
	c := r.Counter(SchedTilesExecuted)
	for w := -1; w < 17; w++ {
		c.Add(w, 2)
	}
	c.Inc(3)
	if got := c.Value(); got != 37 {
		t.Fatalf("Value = %d, want 37", got)
	}
	if again := r.Counter(SchedTilesExecuted); again != c {
		t.Fatalf("second Counter lookup returned a different handle")
	}
}

func TestGauge(t *testing.T) {
	r := New(0)
	g := r.Gauge(EngineEpoch)
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := New(0)
	h := r.Histogram(RecoveryPauseNs)
	samples := []int64{5, 1e4, 1e4 + 1, 5e6, 2e10, 0}
	var want int64
	for _, v := range samples {
		h.Observe(v)
		want += v
	}
	if got := h.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	if got := h.Count(); got != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", got, len(samples))
	}
	hs := r.Snapshot().Hists[RecoveryPauseNs]
	// 5, 1e4 and 0 land in bucket 0 (<=1e4); 1e4+1 in bucket 1; 5e6 in
	// the <=1e7 bucket; 2e10 overflows past the last bound.
	if hs.Counts[0] != 3 || hs.Counts[1] != 1 || hs.Counts[3] != 1 || hs.Counts[len(hs.Counts)-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", hs.Counts)
	}
}

func TestVec(t *testing.T) {
	r := New(0)
	v := r.Vec(TransportMsgsOut)
	v.Add(3, 10)
	v.Add(255, 1)
	v.Add(3, 5)
	if v.Get(3) != 15 || v.Get(255) != 1 || v.Get(0) != 0 {
		t.Fatalf("Get wrong: %d %d %d", v.Get(3), v.Get(255), v.Get(0))
	}
	if v.Total() != 16 {
		t.Fatalf("Total = %d, want 16", v.Total())
	}
}

// TestNilRegistryIsFree checks the disabled path end to end: a nil
// registry hands out nil handles, every method is a no-op, and none of
// it allocates.
func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter(SchedTilesExecuted)
	g := r.Gauge(EngineEpoch)
	h := r.Histogram(RecoveryPauseNs)
	v := r.Vec(VCacheHits)
	if c != nil || g != nil || h != nil || v != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1, 1)
		g.Set(5)
		h.Observe(10)
		v.Add(2, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocate: %v allocs/op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Sum() != 0 || h.Count() != 0 || v.Get(2) != 0 || v.Total() != 0 {
		t.Fatal("nil instruments returned non-zero reads")
	}
	s := r.Snapshot()
	if s.Place != -1 || len(s.Counters) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

// TestHotPathDoesNotAllocate is the allocation-free-on-hot-path claim for
// the enabled registry: updates through live handles stay at zero
// allocs/op.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := New(0)
	c := r.Counter(SchedTilesExecuted)
	g := r.Gauge(EngineEpoch)
	h := r.Histogram(RecoveryPauseNs)
	v := r.Vec(TransportMsgsOut)
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(2, 1)
		g.Set(7)
		h.Observe(12345)
		v.Add(9, 3)
	})
	if allocs != 0 {
		t.Fatalf("enabled instruments allocate on the hot path: %v allocs/op", allocs)
	}
}

func TestUnknownNamePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(r *Registry)
	}{
		{"unregistered", func(r *Registry) { r.Counter("sched.tiles_exceuted") }}, //dpx10:allow metricname deliberate typo under test
		{"wrong kind", func(r *Registry) { r.Gauge(SchedTilesExecuted) }},         //dpx10:allow metricname deliberate kind mismatch under test
	} {
		t.Run(tc.name, func(t *testing.T) {
			mustPanic := func(what string, fn func(*Registry), r *Registry) {
				t.Helper()
				defer func() {
					if recover() == nil {
						t.Fatalf("no panic (%s)", what)
					}
				}()
				fn(r)
			}
			mustPanic("enabled registry", tc.fn, New(0))
			// A nil (disabled) registry must validate names too.
			mustPanic("nil registry", tc.fn, nil)
		})
	}
}

func buildSnapshot() *Snapshot {
	r := New(2)
	r.Counter(SchedTilesExecuted).Add(0, 41)
	r.Counter(TransportRetries).Add(1, 3)
	r.Gauge(EngineEpoch).Set(1)
	h := r.Histogram(RecoveryPauseNs)
	h.Observe(1500)
	h.Observe(3e6)
	v := r.Vec(TransportMsgsOut)
	v.Add(1, 12)
	v.Add(20, 7)
	r.Vec(VCacheHits).Add(0, 99)
	return r.Snapshot()
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := buildSnapshot()
	b := EncodeSnapshot(nil, s)
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	// Truncation at every prefix must fail cleanly, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := DecodeSnapshot(b[:i]); err == nil {
			t.Fatalf("truncated decode at %d/%d succeeded", i, len(b))
		}
	}
	if _, err := DecodeSnapshot(append(b, 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

func TestMerge(t *testing.T) {
	a, b := buildSnapshot(), buildSnapshot()
	total := MergeAll([]*Snapshot{a, b})
	if total.Place != -1 {
		t.Fatalf("aggregate place = %d, want -1", total.Place)
	}
	if got := total.Counters[SchedTilesExecuted]; got != 82 {
		t.Fatalf("merged counter = %d, want 82", got)
	}
	if got := total.Vecs[TransportMsgsOut][20]; got != 14 {
		t.Fatalf("merged vec = %d, want 14", got)
	}
	h := total.Hists[RecoveryPauseNs]
	if h.Count() != 4 || h.Sum != 2*(1500+3e6) {
		t.Fatalf("merged hist count=%d sum=%d", h.Count(), h.Sum)
	}
}

func TestRenderers(t *testing.T) {
	s := buildSnapshot()
	kn := func(vec string, k uint8) string {
		if strings.HasPrefix(vec, "transport.") {
			return "kind" + string('0'+rune(k%10))
		}
		return ""
	}
	var text strings.Builder
	if err := s.WriteText(&text, kn); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"metrics [place 2]", SchedTilesExecuted, "41", "kind1=12"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var js strings.Builder
	if err := WriteJSON(&js, []*Snapshot{s}, kn); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(decoded) != 1 || decoded[0]["place"] != float64(2) {
		t.Fatalf("unexpected JSON: %s", js.String())
	}

	var prom strings.Builder
	if err := WritePrometheus(&prom, []*Snapshot{s}, kn); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dpx10_sched_tiles_executed{place="2"} 41`,
		`dpx10_transport_msgs_out{place="2",key="kind1"} 12`,
		`dpx10_recovery_pause_ns_count{place="2"} 2`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}
}

func TestHandler(t *testing.T) {
	a := buildSnapshot()
	b := buildSnapshot()
	b.Place = 3
	h := Handler(func() []*Snapshot { return []*Snapshot{a, b} }, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{`place="2"`, `place="3"`, `place="all"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("handler output missing %q:\n%s", want, body)
		}
	}
}
