package metrics

// Kind classifies an instrument. Each registered name has exactly one
// kind; asking the registry for a name under the wrong kind panics at
// construction time (and dpx10-vet's metricname analyzer catches it
// statically).
type Kind uint8

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	KindVec
)

// Instrument names. Every name the runtime records under is declared
// here and registered in the instruments table below; Registry methods
// reject anything else. Naming convention: <subsystem>.<metric>, with a
// _ns suffix for nanosecond-valued histograms.
const (
	// Scheduler: tile execution and work stealing.
	SchedTilesExecuted   = "sched.tiles_executed"
	SchedStealsAttempted = "sched.steals_attempted"
	SchedStealsSucceeded = "sched.steals_succeeded"
	SchedDequeParks      = "sched.deque_parks"

	// Lifeline load balancing: bounded random-victim steal probes made
	// before parking, completed park episodes (all probes spent,
	// registrations placed on the lifeline edges), ready tiles pushed to
	// parked buddies, and migrated tiles accepted.
	SchedLifelineProbes = "sched.lifeline_probes"
	SchedLifelineParks  = "sched.lifeline_parks"
	SchedLifelinePushes = "sched.lifeline_pushes"
	SchedTilesMigrated  = "sched.tiles_migrated"

	// Engine-wide state.
	EngineEpoch = "engine.epoch"

	// Remote-vertex cache, one Vec key per shard.
	VCacheHits      = "vcache.hits"
	VCacheMisses    = "vcache.misses"
	VCacheEvictions = "vcache.evictions"

	// Transport, one Vec key per wire kind.
	TransportMsgsOut         = "transport.msgs_out"
	TransportBytesOut        = "transport.bytes_out"
	TransportMsgsIn          = "transport.msgs_in"
	TransportBytesIn         = "transport.bytes_in"
	TransportSendErrors      = "transport.send_errors"
	TransportRetries         = "transport.retries"
	TransportDedupDrops      = "transport.dedup_drops"
	TransportHeartbeatMisses = "transport.heartbeat_misses"

	// Data-plane pipeline: per-writev batch shape and compression yield.
	TransportBatchFrames  = "transport.batch_frames"
	TransportBatchBytes   = "transport.batch_bytes"
	TransportCompressRaw  = "transport.compress_raw_bytes"
	TransportCompressWire = "transport.compress_wire_bytes"

	// Recovery phase durations (nanoseconds), one histogram per phase.
	RecoveryPauseNs   = "recovery.pause_ns"
	RecoveryRebuildNs = "recovery.rebuild_ns"
	RecoveryRestoreNs = "recovery.restore_ns"
	RecoveryReplayNs  = "recovery.replay_ns"
	RecoveryResumeNs  = "recovery.resume_ns"

	// Per-job accounting on multi-job clusters, one Vec key per job id
	// (low byte). Tiles and outbound traffic are recorded by the place
	// that did the work; queue-wait is recorded once per admitted job, on
	// place 0, when the job leaves the admission queue.
	JobTilesExecuted = "job.tiles_executed"
	JobMsgsOut       = "job.msgs_out"
	JobBytesOut      = "job.bytes_out"
	JobQueueWaitNs   = "job.queue_wait_ns"
)

// instruments is the closed registry of instrument names: the single
// source of truth cross-checked against call sites by dpx10-vet's
// metricname analyzer.
var instruments = map[string]Kind{
	SchedTilesExecuted:   KindCounter,
	SchedStealsAttempted: KindCounter,
	SchedStealsSucceeded: KindCounter,
	SchedDequeParks:      KindCounter,
	SchedLifelineProbes:  KindCounter,
	SchedLifelineParks:   KindCounter,
	SchedLifelinePushes:  KindCounter,
	SchedTilesMigrated:   KindCounter,

	EngineEpoch: KindGauge,

	VCacheHits:      KindVec,
	VCacheMisses:    KindVec,
	VCacheEvictions: KindVec,

	TransportMsgsOut:         KindVec,
	TransportBytesOut:        KindVec,
	TransportMsgsIn:          KindVec,
	TransportBytesIn:         KindVec,
	TransportSendErrors:      KindCounter,
	TransportRetries:         KindCounter,
	TransportDedupDrops:      KindCounter,
	TransportHeartbeatMisses: KindCounter,

	TransportBatchFrames:  KindHistogram,
	TransportBatchBytes:   KindHistogram,
	TransportCompressRaw:  KindCounter,
	TransportCompressWire: KindCounter,

	RecoveryPauseNs:   KindHistogram,
	RecoveryRebuildNs: KindHistogram,
	RecoveryRestoreNs: KindHistogram,
	RecoveryReplayNs:  KindHistogram,
	RecoveryResumeNs:  KindHistogram,

	JobTilesExecuted: KindVec,
	JobMsgsOut:       KindVec,
	JobBytesOut:      KindVec,
	JobQueueWaitNs:   KindVec,
}

// DurationBounds are the default bucket upper bounds for nanosecond
// duration histograms: 10µs up to 10s, one decade per bucket.
var DurationBounds = []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// histBounds overrides the bucket bounds for histograms that are not
// nanosecond durations; names absent here get DurationBounds.
var histBounds = map[string][]int64{
	// Frames per writev: 1 = no coalescing happened, powers of two up.
	TransportBatchFrames: {1, 2, 4, 8, 16, 32, 64, 128, 256},
	// Wire bytes per writev.
	TransportBatchBytes: {256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20},
}
