// Package metrics is the runtime's observability registry: one Registry
// per place holding named counters, gauges, histograms and small keyed
// vectors, all updated lock-free on the hot path and readable at any
// moment as a consistent-enough Snapshot.
//
// The package depends only on the standard library and holds no
// references into the rest of the runtime; renderers that need to name
// vector keys (wire kinds, cache shards) take a KeyNamer callback.
//
// Disabled runs cost nothing: a nil *Registry hands out nil instrument
// handles, and every instrument method is a nil-receiver no-op, so the
// wiring can be unconditional and the hot path pays a single predictable
// nil check when metrics are off.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// counterShards is the number of cache-line-padded slots a Counter
// spreads its increments over; worker w writes slot w&(counterShards-1).
// Must be a power of two.
const counterShards = 8

// padded keeps one atomic counter alone on its cache line so workers
// incrementing different slots never false-share.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sum, sharded per worker.
type Counter struct {
	slots [counterShards]padded
}

// Add adds n to the counter. wkr selects the shard — pass the worker's
// index on worker goroutines; any value (e.g. -1) is safe elsewhere.
func (c *Counter) Add(wkr int, n int64) {
	if c == nil {
		return
	}
	c.slots[uint(wkr)&(counterShards-1)].v.Add(n)
}

// Inc is Add(wkr, 1).
func (c *Counter) Inc(wkr int) { c.Add(wkr, 1) }

// Value returns the current sum across shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var s int64
	for i := range c.slots {
		s += c.slots[i].v.Load()
	}
	return s
}

// Gauge is a last-value-wins instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: bounds[i] is the inclusive
// upper bound of bucket i, with one extra overflow bucket at the end.
// Sum accumulates the exact total of observed values, so phase-duration
// histograms can be cross-checked against wall-clock measurements.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Sum returns the exact total of all observed samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Vec is a small vector of counters keyed by a uint8 — a wire kind or a
// cache shard index. All 256 slots exist up front so Add is a single
// indexed atomic.
type Vec struct {
	slots [256]atomic.Int64
}

// Add adds n under key.
func (v *Vec) Add(key uint8, n int64) {
	if v == nil {
		return
	}
	v.slots[key].Add(n)
}

// Get returns the current value under key.
func (v *Vec) Get(key uint8) int64 {
	if v == nil {
		return 0
	}
	return v.slots[key].Load()
}

// Total returns the sum over all keys.
func (v *Vec) Total() int64 {
	if v == nil {
		return 0
	}
	var s int64
	for i := range v.slots {
		s += v.slots[i].Load()
	}
	return s
}

// Registry holds one place's instruments. Instruments are created (or
// fetched) by name at wiring time — never on the hot path — and the
// returned handles are then updated without any lookup or lock.
//
// A nil *Registry is the disabled registry: every method returns a nil
// handle after validating the name, so misuse is caught even when
// metrics are off.
type Registry struct {
	place int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[string]*Vec
}

// New returns an enabled registry for the given place.
func New(place int) *Registry {
	return &Registry{
		place:    place,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		vecs:     map[string]*Vec{},
	}
}

// Place returns the place this registry belongs to.
func (r *Registry) Place() int {
	if r == nil {
		return -1
	}
	return r.place
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

func check(name string, k Kind) {
	got, ok := instruments[name]
	if !ok {
		panic(fmt.Sprintf("metrics: unregistered instrument %q", name))
	}
	if got != k {
		panic(fmt.Sprintf("metrics: instrument %q has kind %d, asked for %d", name, got, k))
	}
}

// Counter returns the named counter, creating it on first use. The name
// must be registered with KindCounter.
func (r *Registry) Counter(name string) *Counter {
	check(name, KindCounter)
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	check(name, KindGauge)
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// name's registered bucket bounds (DurationBounds unless histBounds says
// otherwise).
func (r *Registry) Histogram(name string) *Histogram {
	check(name, KindHistogram)
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bounds := DurationBounds
		if b, ok := histBounds[name]; ok {
			bounds = b
		}
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Vec returns the named vector, creating it on first use.
func (r *Registry) Vec(name string) *Vec {
	check(name, KindVec)
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.vecs[name]
	if v == nil {
		v = &Vec{}
		r.vecs[name] = v
	}
	return v
}
