package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// KeyNamer maps a Vec key to a human-readable label — e.g. the wire-kind
// name for transport vectors, "shard3" for cache vectors. A nil namer
// falls back to the decimal key.
type KeyNamer func(vecName string, key uint8) string

func keyLabel(kn KeyNamer, vec string, key uint8) string {
	if kn != nil {
		if s := kn(vec, key); s != "" {
			return s
		}
	}
	return fmt.Sprintf("%d", key)
}

func placeLabel(p int) string {
	if p < 0 {
		return "total"
	}
	return fmt.Sprintf("place %d", p)
}

// WriteText renders s as an aligned, sorted, human-readable block.
func (s *Snapshot) WriteText(w io.Writer, kn KeyNamer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics [%s]\n", placeLabel(s.Place))
	type line struct{ name, val string }
	var lines []line
	for _, name := range sortedKeys(s.Counters) {
		lines = append(lines, line{name, fmt.Sprintf("%d", s.Counters[name])})
	}
	for _, name := range sortedKeys(s.Gauges) {
		lines = append(lines, line{name, fmt.Sprintf("%d", s.Gauges[name])})
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		lines = append(lines, line{name, fmt.Sprintf("count=%d sum=%d", h.Count(), h.Sum)})
	}
	for _, name := range sortedKeys(s.Vecs) {
		v := s.Vecs[name]
		keys := make([]int, 0, len(v))
		for k := range v {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		var parts []string
		var total int64
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", keyLabel(kn, name, uint8(k)), v[uint8(k)]))
			total += v[uint8(k)]
		}
		lines = append(lines, line{name, fmt.Sprintf("total=%d  %s", total, strings.Join(parts, " "))})
	}
	width := 0
	for _, l := range lines {
		if len(l.name) > width {
			width = len(l.name)
		}
	}
	for _, l := range lines {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, l.name, l.val)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonHist mirrors HistSnapshot with explicit field names.
type jsonHist struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// jsonSnapshot is the JSON rendering of a Snapshot: vec keys become
// labeled strings so consumers never parse uint8 map keys.
type jsonSnapshot struct {
	Place    int                         `json:"place"`
	Counters map[string]int64            `json:"counters,omitempty"`
	Gauges   map[string]int64            `json:"gauges,omitempty"`
	Hists    map[string]jsonHist         `json:"histograms,omitempty"`
	Vecs     map[string]map[string]int64 `json:"vectors,omitempty"`
}

func (s *Snapshot) toJSON(kn KeyNamer) jsonSnapshot {
	js := jsonSnapshot{
		Place:    s.Place,
		Counters: s.Counters,
		Gauges:   s.Gauges,
	}
	if len(s.Hists) > 0 {
		js.Hists = map[string]jsonHist{}
		for name, h := range s.Hists {
			js.Hists[name] = jsonHist{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count(), Sum: h.Sum}
		}
	}
	if len(s.Vecs) > 0 {
		js.Vecs = map[string]map[string]int64{}
		for name, v := range s.Vecs {
			m := map[string]int64{}
			for k, n := range v {
				m[keyLabel(kn, name, k)] = n
			}
			js.Vecs[name] = m
		}
	}
	return js
}

// WriteJSON renders the snapshots as one indented JSON array.
func WriteJSON(w io.Writer, snaps []*Snapshot, kn KeyNamer) error {
	out := make([]jsonSnapshot, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, s.toJSON(kn))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// promName converts an instrument name to a Prometheus metric name:
// dpx10_<name with separators flattened>.
func promName(name string) string {
	r := strings.NewReplacer(".", "_", "-", "_")
	return "dpx10_" + r.Replace(name)
}

func promPlace(p int) string {
	if p < 0 {
		return "all"
	}
	return fmt.Sprintf("%d", p)
}

// WritePrometheus renders the snapshots in the Prometheus text exposition
// format, one time series per (instrument, place[, key | bucket]).
func WritePrometheus(w io.Writer, snaps []*Snapshot, kn KeyNamer) error {
	var b strings.Builder
	for _, s := range snaps {
		pl := promPlace(s.Place)
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "%s{place=\"%s\"} %d\n", promName(name), pl, s.Counters[name])
		}
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "%s{place=\"%s\"} %d\n", promName(name), pl, s.Gauges[name])
		}
		for _, name := range sortedKeys(s.Hists) {
			h := s.Hists[name]
			mn := promName(name)
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{place=%q,le=\"%d\"} %d\n", mn, pl, bound, cum)
			}
			fmt.Fprintf(&b, "%s_bucket{place=%q,le=\"+Inf\"} %d\n", mn, pl, h.Count())
			fmt.Fprintf(&b, "%s_sum{place=%q} %d\n", mn, pl, h.Sum)
			fmt.Fprintf(&b, "%s_count{place=%q} %d\n", mn, pl, h.Count())
		}
		for _, name := range sortedKeys(s.Vecs) {
			v := s.Vecs[name]
			keys := make([]int, 0, len(v))
			for k := range v {
				keys = append(keys, int(k))
			}
			sort.Ints(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{place=%q,key=%q} %d\n",
					promName(name), pl, keyLabel(kn, name, uint8(k)), v[uint8(k)])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the Prometheus text format from live snapshots: fn is
// invoked per scrape, so a dashboard polling /metrics observes counters
// advancing while the run is in flight.
func Handler(fn func() []*Snapshot, kn KeyNamer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snaps := fn()
		if len(snaps) > 1 {
			snaps = append(snaps, MergeAll(snaps))
		}
		if err := WritePrometheus(w, snaps, kn); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
