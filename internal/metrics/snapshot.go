package metrics

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// HistSnapshot is a histogram's state at snapshot time.
type HistSnapshot struct {
	Bounds []int64 // inclusive upper bounds, ascending
	Counts []int64 // len(Bounds)+1, last is overflow
	Sum    int64   // exact total of observed samples
}

// Count returns the number of samples in the snapshot.
func (h HistSnapshot) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Snapshot is one registry's instruments read at a point in time. Vec
// slots that were never touched are omitted, so the maps stay small.
type Snapshot struct {
	Place    int
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
	Vecs     map[string]map[uint8]int64
}

// Snapshot reads every instrument. Concurrent writers may race individual
// atomics, but each read value is a valid point-in-time count; once the
// place is quiescent the snapshot is exact. Nil registries return an
// empty snapshot for place -1.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Place:    -1,
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
		Vecs:     map[string]map[uint8]int64{},
	}
	if r == nil {
		return s
	}
	s.Place = r.place
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Hists[name] = hs
	}
	for name, v := range r.vecs {
		m := map[uint8]int64{}
		for k := 0; k < 256; k++ {
			if n := v.slots[k].Load(); n != 0 {
				m[uint8(k)] = n
			}
		}
		s.Vecs[name] = m
	}
	return s
}

// Merge folds other into s: counters, histogram buckets/sums and vec
// slots add; gauges add too (the merged value of a per-place gauge such
// as the epoch is only meaningful when the places agree, but summing
// keeps Merge total and order-independent). The merged snapshot's Place
// is -1, marking an aggregate.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	s.Place = -1
	for name, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = map[string]int64{}
		}
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[name] += v
	}
	for name, oh := range other.Hists {
		if s.Hists == nil {
			s.Hists = map[string]HistSnapshot{}
		}
		sh, ok := s.Hists[name]
		if !ok || len(sh.Bounds) != len(oh.Bounds) {
			s.Hists[name] = HistSnapshot{
				Bounds: append([]int64(nil), oh.Bounds...),
				Counts: append([]int64(nil), oh.Counts...),
				Sum:    oh.Sum,
			}
			continue
		}
		for i := range sh.Counts {
			sh.Counts[i] += oh.Counts[i]
		}
		sh.Sum += oh.Sum
		s.Hists[name] = sh
	}
	for name, ov := range other.Vecs {
		if s.Vecs == nil {
			s.Vecs = map[string]map[uint8]int64{}
		}
		sv := s.Vecs[name]
		if sv == nil {
			sv = map[uint8]int64{}
			s.Vecs[name] = sv
		}
		for k, n := range ov {
			sv[k] += n
		}
	}
}

// MergeAll merges every snapshot into a fresh aggregate.
func MergeAll(snaps []*Snapshot) *Snapshot {
	total := &Snapshot{Place: -1}
	for _, s := range snaps {
		total.Merge(s)
	}
	return total
}

// --- wire encoding ----------------------------------------------------
//
// Snapshots cross places inside a kindStats reply. The format is
// little-endian, length-prefixed and self-contained:
//
//	u32 place (two's complement)
//	u32 nCounters, then per counter: u8 nameLen, name, u64 value
//	u32 nGauges,   same shape
//	u32 nHists,    per hist: u8 nameLen, name, u8 nBounds,
//	               nBounds x u64 bounds, (nBounds+1) x u64 counts, u64 sum
//	u32 nVecs,     per vec: u8 nameLen, name, u16 nKeys,
//	               then per key: u8 key, u64 value
//
// Signed values travel as their two's-complement uint64. The decoder is
// total: any input either round-trips or returns an error, never panics
// or over-allocates (section counts are validated against the bytes
// remaining before any allocation).

func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func putName(b []byte, name string) []byte {
	if len(name) > 255 {
		name = name[:255]
	}
	b = append(b, uint8(len(name)))
	return append(b, name...)
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EncodeSnapshot appends s's wire form to b and returns the result.
// Sections and vec keys are emitted in sorted order, so equal snapshots
// encode to equal bytes.
func EncodeSnapshot(b []byte, s *Snapshot) []byte {
	b = putU32(b, uint32(int32(s.Place)))
	b = putU32(b, uint32(len(s.Counters)))
	for _, name := range sortedKeys(s.Counters) {
		b = putName(b, name)
		b = putU64(b, uint64(s.Counters[name]))
	}
	b = putU32(b, uint32(len(s.Gauges)))
	for _, name := range sortedKeys(s.Gauges) {
		b = putName(b, name)
		b = putU64(b, uint64(s.Gauges[name]))
	}
	b = putU32(b, uint32(len(s.Hists)))
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		b = putName(b, name)
		nb := len(h.Bounds)
		if nb > 255 {
			nb = 255
		}
		b = append(b, uint8(nb))
		for i := 0; i < nb; i++ {
			b = putU64(b, uint64(h.Bounds[i]))
		}
		for i := 0; i <= nb; i++ {
			var c int64
			if i < len(h.Counts) {
				c = h.Counts[i]
			}
			b = putU64(b, uint64(c))
		}
		b = putU64(b, uint64(h.Sum))
	}
	b = putU32(b, uint32(len(s.Vecs)))
	for _, name := range sortedKeys(s.Vecs) {
		v := s.Vecs[name]
		b = putName(b, name)
		b = putU16(b, uint16(len(v)))
		keys := make([]int, 0, len(v))
		for k := range v {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			b = append(b, uint8(k))
			b = putU64(b, uint64(v[uint8(k)]))
		}
	}
	return b
}

// snapReader is a bounds-checked little-endian cursor; after any failed
// read every later read fails too, so decode loops stay simple.
type snapReader struct {
	b   []byte
	off int
	err bool
}

func (r *snapReader) fail() {
	r.err = true
}

func (r *snapReader) u8() uint8 {
	if r.err || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *snapReader) u16() uint16 {
	if r.err || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *snapReader) u32() uint32 {
	if r.err || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if r.err || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) name() string {
	n := int(r.u8())
	if r.err || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a section length and validates it against the bytes left,
// assuming each entry needs at least min bytes, so a hostile length
// cannot drive a large allocation.
func (r *snapReader) count(min int) int {
	n := int(r.u32())
	if r.err || n < 0 || n*min > len(r.b)-r.off {
		r.fail()
		return 0
	}
	return n
}

var errBadSnapshot = fmt.Errorf("metrics: malformed snapshot")

// DecodeSnapshot parses one wire-format snapshot. It accepts exactly the
// output of EncodeSnapshot; trailing bytes, truncation or inconsistent
// lengths return an error.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	r := &snapReader{b: b}
	s := &Snapshot{
		Place:    int(int32(r.u32())),
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
		Vecs:     map[string]map[uint8]int64{},
	}
	for i, n := 0, r.count(1+8); i < n && !r.err; i++ {
		name := r.name()
		s.Counters[name] = int64(r.u64())
	}
	for i, n := 0, r.count(1+8); i < n && !r.err; i++ {
		name := r.name()
		s.Gauges[name] = int64(r.u64())
	}
	for i, n := 0, r.count(1+1+8+8); i < n && !r.err; i++ {
		name := r.name()
		nb := int(r.u8())
		if r.err || nb*16 > len(r.b)-r.off {
			r.fail()
			break
		}
		h := HistSnapshot{Bounds: make([]int64, nb), Counts: make([]int64, nb+1)}
		for j := 0; j < nb; j++ {
			h.Bounds[j] = int64(r.u64())
		}
		for j := 0; j <= nb; j++ {
			h.Counts[j] = int64(r.u64())
		}
		h.Sum = int64(r.u64())
		s.Hists[name] = h
	}
	for i, n := 0, r.count(1+2); i < n && !r.err; i++ {
		name := r.name()
		nk := int(r.u16())
		if r.err || nk*9 > len(r.b)-r.off {
			r.fail()
			break
		}
		m := make(map[uint8]int64, nk)
		for j := 0; j < nk; j++ {
			k := r.u8()
			m[k] = int64(r.u64())
		}
		s.Vecs[name] = m
	}
	if r.err || r.off != len(r.b) {
		return nil, errBadSnapshot
	}
	return s, nil
}
