package metrics

import (
	"runtime"
	"sync"
	"testing"
)

// TestRegistryConcurrentStress hammers one registry from GOMAXPROCS
// writer goroutines while a reader repeatedly snapshots it. Under -race
// this proves the instruments and the snapshot path are data-race free;
// afterwards the totals must equal exactly what the writers put in (no
// lost updates across shards).
func TestRegistryConcurrentStress(t *testing.T) {
	const perWriter = 5000
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	r := New(0)
	// Pre-create the handles on the main goroutine the way the engine
	// does at wiring time; the writers only touch handles.
	c := r.Counter(SchedTilesExecuted)
	g := r.Gauge(EngineEpoch)
	h := r.Histogram(RecoveryPauseNs)
	v := r.Vec(TransportMsgsOut)

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			// Every intermediate snapshot must be internally sane.
			if s.Counters[SchedTilesExecuted] < 0 {
				t.Error("negative counter in snapshot")
				return
			}
			b := EncodeSnapshot(nil, s)
			if _, err := DecodeSnapshot(b); err != nil {
				t.Errorf("mid-run snapshot does not round-trip: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(w, 1)
				g.Set(int64(i))
				h.Observe(int64(i % 1000))
				v.Add(uint8(w%7), 1)
				// Concurrent handle lookups must also be safe.
				if i%512 == 0 {
					r.Counter(SchedStealsAttempted).Inc(w)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	total := int64(writers) * perWriter
	if got := c.Value(); got != total {
		t.Fatalf("counter lost updates: %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost samples: %d, want %d", got, total)
	}
	if got := v.Total(); got != total {
		t.Fatalf("vec lost updates: %d, want %d", got, total)
	}
}
