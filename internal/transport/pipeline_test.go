package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// memConn is an in-memory net.Conn sink for driving flush directly.
type memConn struct{ bytes.Buffer }

func (m *memConn) Close() error                     { return nil }
func (m *memConn) LocalAddr() net.Addr              { return nil }
func (m *memConn) RemoteAddr() net.Addr             { return nil }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

// decodeStream parses a pipelined wire stream — preamble, classic frames,
// batch envelopes, compressed payloads — returning every logical payload
// in arrival order. It mirrors the readLoop's parse using the same
// production helpers (readFrame, walkBatch, inflatePayload).
func decodeStream(r io.Reader) (payloads [][]byte, kinds []uint8, seqs []uint64, err error) {
	var inf io.ReadCloser
	var infSrc bytes.Reader
	one := func(kind, flags uint8, seq uint64, payload []byte) bool {
		if flags&flagCompressed != 0 {
			rb, n, ierr := inflatePayload(&inf, &infSrc, payload)
			if ierr != nil {
				err = ierr
				return false
			}
			payload = append([]byte(nil), rb.b[:n]...)
			rb.release()
		} else {
			payload = append([]byte(nil), payload...)
		}
		payloads = append(payloads, payload)
		kinds = append(kinds, kind)
		seqs = append(seqs, seq)
		return true
	}
	for {
		kind, flags, _, seq, payload, rerr := readFrame(r)
		if rerr != nil {
			if rerr == io.EOF {
				return payloads, kinds, seqs, err
			}
			return payloads, kinds, seqs, rerr
		}
		switch {
		case flags&flagControl != 0:
			if seq&^uint64(featAll) != 0 {
				return payloads, kinds, seqs, io.ErrUnexpectedEOF
			}
		case flags&flagBatch != 0:
			if kind != 0 || !walkBatch(payload, seq, one) {
				if err == nil {
					err = io.ErrUnexpectedEOF
				}
				return payloads, kinds, seqs, err
			}
		default:
			if !one(kind, flags, seq, payload) {
				return payloads, kinds, seqs, err
			}
		}
	}
}

// FuzzFrameBatchRoundTrip drives the writer's flush path — batch
// envelopes, compression, preamble — over fuzzer-chosen payload splits and
// checks byte-identical decode, then re-parses the stream truncated at
// every byte boundary: truncation must never panic and never yield the
// complete frame set.
func FuzzFrameBatchRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), uint8(1), uint16(0))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint8(3), uint16(8))
	f.Add(bytes.Repeat([]byte{0xAB, 0xCD}, 3000), uint8(5), uint16(64))
	f.Add([]byte{}, uint8(2), uint16(0))
	// A lifelineDeliver-shaped payload (kind 22 on the wire): epoch u64,
	// cell count u32, two 8-byte vertex ids, dep count u32, one (id, value)
	// pair — the newest protocol kind must batch and decode like the rest.
	f.Add([]byte{
		7, 0, 0, 0, 0, 0, 0, 0, // epoch
		2, 0, 0, 0, // nCells
		1, 0, 0, 0, 0, 0, 0, 0, // cell id 1
		2, 0, 0, 0, 0, 0, 0, 0, // cell id 2
		1, 0, 0, 0, // nDeps
		3, 0, 0, 0, 0, 0, 0, 0, // dep id
		42, 0, 0, 0, 0, 0, 0, 0, // dep value (int64)
	}, uint8(1), uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, nsplit uint8, compressMin uint16) {
		if len(data) > 1<<14 {
			return
		}
		// Split data into 1..8 frames.
		n := int(nsplit%8) + 1
		var chunks [][]byte
		for i := 0; i < n; i++ {
			lo, hi := i*len(data)/n, (i+1)*len(data)/n
			chunks = append(chunks, data[lo:hi])
		}
		opts := TCPOptions{CompressMin: int(compressMin)}
		if compressMin == 0 {
			opts.NoCompress = true
		}
		opts.normalize()

		mc := &memConn{}
		tc := newTCPConn(mc, &opts)
		tr := &TCP{self: 2}
		batch := make([]outFrame, n)
		for i, c := range chunks {
			batch[i] = outFrame{kind: uint8(i + 1), seq: uint64(i) << 8, payload: c}
		}
		if _, err := tc.flush(tr, batch); err != nil {
			t.Fatalf("flush: %v", err)
		}
		stream := mc.Bytes()

		payloads, kinds, seqs, err := decodeStream(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(payloads) != n {
			t.Fatalf("decoded %d frames, sent %d", len(payloads), n)
		}
		for i, c := range chunks {
			if !bytes.Equal(payloads[i], c) {
				t.Fatalf("frame %d payload mismatch: %d bytes vs %d sent", i, len(payloads[i]), len(c))
			}
			if kinds[i] != uint8(i+1) || seqs[i] != uint64(i)<<8 {
				t.Fatalf("frame %d identity mismatch: kind=%d seq=%d", i, kinds[i], seqs[i])
			}
		}

		// Truncation at every boundary: no panic, never a complete parse.
		for cut := 0; cut < len(stream); cut++ {
			got, _, _, _ := decodeStream(bytes.NewReader(stream[:cut]))
			if len(got) >= n {
				t.Fatalf("truncated stream (%d/%d bytes) still decoded all %d frames", cut, len(stream), n)
			}
		}

		// Arbitrary bytes must never panic the batch walker, whatever the
		// claimed count.
		walkBatch(data, uint64(nsplit), func(_, _ uint8, _ uint64, _ []byte) bool { return true })
	})
}

// TestPipelinedSendPerPeerFIFO hammers one peer from concurrent senders
// and asserts the wire preserves each sender's order — the per-peer FIFO
// invariant batching must not break. The receiver is a raw listener
// parsing frames straight off the socket, so the check covers exactly
// what was written, batch boundaries included. Senders reuse one payload
// buffer across sends, which also exercises the group-commit contract:
// the buffer must be free for reuse the moment Send returns.
func TestPipelinedSendPerPeerFIFO(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ep, err := NewTCP(0, []string{"127.0.0.1:0", ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	type rec struct{ sender, i uint32 }
	recsCh := make(chan []rec, 1)
	errCh := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errCh <- err
			recsCh <- nil
			return
		}
		defer c.Close()
		var recs []rec
		br := bufio.NewReaderSize(c, 64<<10)
		add := func(_, flags uint8, _ uint64, p []byte) bool {
			if len(p) != 8 {
				errCh <- io.ErrUnexpectedEOF
				return false
			}
			recs = append(recs, rec{binary.LittleEndian.Uint32(p[0:4]), binary.LittleEndian.Uint32(p[4:8])})
			return true
		}
		for {
			kind, flags, _, seq, payload, err := readFrame(br)
			if err != nil { // EOF: sender closed after the last Send returned
				recsCh <- recs
				return
			}
			switch {
			case flags&flagControl != 0:
			case flags&flagBatch != 0:
				if kind != 0 || !walkBatch(payload, seq, add) {
					recsCh <- recs
					return
				}
			default:
				if !add(kind, flags, seq, payload) {
					recsCh <- recs
					return
				}
			}
		}
	}()

	const G, N = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf [8]byte // reused: Send must not retain it
			for i := 0; i < N; i++ {
				binary.LittleEndian.PutUint32(buf[0:4], uint32(g))
				binary.LittleEndian.PutUint32(buf[4:8], uint32(i))
				if err := ep.Send(1, 7, buf[:]); err != nil {
					t.Errorf("sender %d send %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ep.Close() // EOF tells the reader the stream is complete

	recs := <-recsCh
	select {
	case err := <-errCh:
		t.Fatalf("reader: %v", err)
	default:
	}
	if len(recs) != G*N {
		t.Fatalf("received %d messages, sent %d", len(recs), G*N)
	}
	next := make([]uint32, G)
	for k, r := range recs {
		if r.sender >= G {
			t.Fatalf("record %d: bogus sender %d", k, r.sender)
		}
		if r.i != next[r.sender] {
			t.Fatalf("record %d: sender %d sent out of order: got message %d, want %d",
				k, r.sender, r.i, next[r.sender])
		}
		next[r.sender]++
	}
}
