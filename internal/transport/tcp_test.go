package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTCPCluster starts n TCP endpoints on loopback with OS-assigned ports.
// Each endpoint learns the others' actual addresses before any traffic.
func newTCPCluster(t *testing.T, n int) []*TCP {
	t.Helper()
	eps := make([]*TCP, n)
	addrs := make([]string, n)
	// First pass: everyone listens on :0 so ports never collide.
	for i := 0; i < n; i++ {
		placeholder := make([]string, n)
		for j := range placeholder {
			placeholder[j] = "127.0.0.1:0"
		}
		ep, err := NewTCP(i, placeholder)
		if err != nil {
			t.Fatalf("NewTCP(%d): %v", i, err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	// Second pass: install the real address table.
	for i := 0; i < n; i++ {
		copy(eps[i].addrs, addrs)
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func TestTCPCallRoundTrip(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[1].Handle(7, func(from int, payload []byte) ([]byte, error) {
		return append([]byte(fmt.Sprintf("from%d:", from)), payload...), nil
	})
	reply, err := eps[0].Call(1, 7, []byte("data"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "from0:data" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTCPBidirectional(t *testing.T) {
	eps := newTCPCluster(t, 2)
	for _, ep := range eps {
		ep := ep
		ep.Handle(1, func(int, []byte) ([]byte, error) {
			return []byte{byte(ep.Self())}, nil
		})
	}
	r0, err := eps[0].Call(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eps[1].Call(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r0[0] != 1 || r1[0] != 0 {
		t.Fatalf("replies = %v, %v", r0, r1)
	}
}

func TestTCPSendOneWay(t *testing.T) {
	eps := newTCPCluster(t, 2)
	got := make(chan []byte, 1)
	eps[1].Handle(3, func(_ int, payload []byte) ([]byte, error) {
		// The handler contract forbids letting the payload escape; clone
		// before handing it to the test's channel.
		got <- bytes.Clone(payload)
		return nil, nil
	})
	if err := eps[0].Send(1, 3, []byte("oneway")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "oneway" {
			t.Fatalf("payload = %q", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("one-way message never delivered")
	}
}

func TestTCPHandlerError(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[1].Handle(1, func(int, []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := eps[0].Call(1, 1, nil)
	if err == nil {
		t.Fatal("want error from remote handler")
	}
	if errors.Is(err, ErrDeadPlace) {
		t.Fatalf("generic handler error misreported as ErrDeadPlace: %v", err)
	}
}

func TestTCPDeadPlacePropagates(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[1].Handle(1, func(int, []byte) ([]byte, error) {
		return nil, ErrDeadPlace
	})
	if _, err := eps[0].Call(1, 1, nil); !errors.Is(err, ErrDeadPlace) {
		t.Fatalf("err = %v, want ErrDeadPlace identity preserved over the wire", err)
	}
}

func TestTCPPeerCrash(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[1].Handle(1, func(int, []byte) ([]byte, error) { return []byte{1}, nil })
	if _, err := eps[0].Call(1, 1, nil); err != nil {
		t.Fatalf("warmup Call: %v", err)
	}
	eps[1].Close()
	eps[0].MarkDead(1)
	if _, err := eps[0].Call(1, 1, nil); !errors.Is(err, ErrDeadPlace) {
		t.Fatalf("Call to crashed peer: err = %v, want ErrDeadPlace", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	eps := newTCPCluster(t, 3)
	for _, ep := range eps {
		ep := ep
		ep.Handle(1, func(_ int, payload []byte) ([]byte, error) {
			out := make([]byte, len(payload))
			copy(out, payload)
			return out, nil
		})
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for p := 0; p < 3; p++ {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(p, g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					to := (p + 1) % 3
					want := fmt.Sprintf("p%dg%di%d", p, g, i)
					reply, err := eps[p].Call(to, 1, []byte(want))
					if err != nil {
						errCh <- err
						return
					}
					if string(reply) != want {
						errCh <- fmt.Errorf("reply %q != %q: response mismatched to wrong request", reply, want)
						return
					}
				}
			}(p, g)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[1].Handle(1, func(_ int, payload []byte) ([]byte, error) {
		sum := byte(0)
		for _, b := range payload {
			sum += b
		}
		return []byte{sum}, nil
	})
	big := make([]byte, 1<<20)
	var want byte
	for i := range big {
		big[i] = byte(i)
		want += byte(i)
	}
	reply, err := eps[0].Call(1, 1, big)
	if err != nil {
		t.Fatal(err)
	}
	if reply[0] != want {
		t.Fatalf("checksum = %d, want %d", reply[0], want)
	}
}

func TestTCPFrameChecksum(t *testing.T) {
	// A corrupted payload must be rejected by the reader, not delivered.
	var buf bytes.Buffer
	if err := writeFrame(&buf, 5, 0, 1, 9, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload byte
	if _, _, _, _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted frame accepted")
	}
	// And an intact one round-trips.
	buf.Reset()
	if err := writeFrame(&buf, 5, 0, 1, 9, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	kind, _, from, seq, payload, err := readFrame(&buf)
	if err != nil || kind != 5 || from != 1 || seq != 9 || string(payload) != "payload" {
		t.Fatalf("round trip failed: %v", err)
	}
}
