package transport

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// recvBuf is a pooled, reference-counted receive buffer. The read loop
// reads a frame (or a whole batch envelope) into one recvBuf and lends
// sub-slices of it to handler goroutines; each borrow takes a reference,
// and the buffer returns to its size-class pool when the last reference
// is released. This is what lets the receive path deliver payloads with
// zero copies: the Handler contract — the payload must not be retained
// after the handler returns — is exactly the license to recycle.
//
// Response payloads are the one exception: Call callers keep their reply
// after Call returns, so the dispatch path copies those out of the pooled
// buffer instead of lending it.
type recvBuf struct {
	b     []byte
	class int32 // pool index, -1 for oversized one-shot buffers
	refs  atomic.Int32
}

// Receive pools are size-classed by power of two from 512 B to 1 MiB;
// larger buffers (bulk recovery transfers) are allocated directly and
// left to the GC — pooling them would pin worst-case memory forever.
const (
	minRecvClass = 9  // 512 B
	maxRecvClass = 20 // 1 MiB
)

var recvPools [maxRecvClass + 1]sync.Pool

// getRecvBuf returns a buffer with capacity >= n and refcount 1.
func getRecvBuf(n int) *recvBuf {
	class := minRecvClass
	if n > 1<<minRecvClass {
		class = bits.Len(uint(n - 1))
	}
	if class > maxRecvClass {
		rb := &recvBuf{b: make([]byte, n), class: -1}
		rb.refs.Store(1)
		return rb
	}
	if v := recvPools[class].Get(); v != nil {
		rb := v.(*recvBuf)
		rb.refs.Store(1)
		return rb
	}
	rb := &recvBuf{b: make([]byte, 1<<class), class: int32(class)}
	rb.refs.Store(1)
	return rb
}

// retain takes one more reference; pair every retain with a release.
func (rb *recvBuf) retain() { rb.refs.Add(1) }

// release drops one reference, recycling the buffer when none remain.
func (rb *recvBuf) release() {
	if n := rb.refs.Add(-1); n == 0 {
		if rb.class >= 0 {
			recvPools[rb.class].Put(rb)
		}
	} else if n < 0 {
		panic("transport: recvBuf released below zero")
	}
}
