package transport

import (
	"sync"
	"sync/atomic"
)

// LocalFabric connects n places inside one process. Each place gets an
// endpoint via Endpoint(p). One-way messages are queued and dispatched by
// a per-place goroutine, which preserves per-pair ordering; Call traffic
// invokes the destination handler synchronously.
//
// Payloads are copied at the fabric boundary so that a handler can never
// alias the sender's buffer — the same isolation a real wire gives, which
// keeps the engine honest about what data actually moves between places.
// The copies land in the same pooled receive buffers the TCP read path
// uses (recvBuf) and are recycled when the handler returns, so steady-state
// traffic allocates nothing.
//
// Kill(p) fails place p: all subsequent traffic to or from p reports
// ErrDeadPlace and p's queued messages are dropped.
type LocalFabric struct {
	n    int
	eps  []*localEndpoint
	dead []atomic.Bool
}

// NewLocalFabric creates a fabric with n places, numbered 0..n-1.
func NewLocalFabric(n int) *LocalFabric {
	if n <= 0 {
		panic("transport: fabric needs at least one place")
	}
	f := &LocalFabric{
		n:    n,
		eps:  make([]*localEndpoint, n),
		dead: make([]atomic.Bool, n),
	}
	for p := 0; p < n; p++ {
		ep := &localEndpoint{
			fabric: f,
			self:   p,
			queue:  make(chan localMsg, 1024),
			closed: make(chan struct{}),
		}
		f.eps[p] = ep
		go ep.dispatch()
	}
	return f
}

// Endpoint returns place p's transport.
func (f *LocalFabric) Endpoint(p int) Transport { return f.eps[p] }

// Kill marks place p dead. In-flight and future messages involving p fail
// with ErrDeadPlace. Killing an already-dead place is a no-op.
func (f *LocalFabric) Kill(p int) { f.dead[p].Store(true) }

// Revive clears the dead flag; used only by tests that reuse a fabric.
func (f *LocalFabric) Revive(p int) { f.dead[p].Store(false) }

// Alive reports whether place p is alive.
func (f *LocalFabric) Alive(p int) bool { return !f.dead[p].Load() }

// Close shuts down every endpoint.
func (f *LocalFabric) Close() error {
	for _, ep := range f.eps {
		ep.Close()
	}
	return nil
}

type localMsg struct {
	from    int
	kind    uint8
	payload []byte   // sub-slice of rb's buffer
	rb      *recvBuf // released after dispatch
}

// copyToPool copies b into a fresh pooled buffer (refcount 1).
func copyToPool(b []byte) (*recvBuf, []byte) {
	rb := getRecvBuf(len(b))
	p := rb.b[:len(b)]
	copy(p, b)
	return rb, p
}

type localEndpoint struct {
	fabric *LocalFabric
	self   int
	stats  Stats

	mu       sync.RWMutex
	handlers [256]Handler

	queue     chan localMsg
	closed    chan struct{}
	closeOnce sync.Once
}

var _ Transport = (*localEndpoint)(nil)

func (e *localEndpoint) Self() int     { return e.self }
func (e *localEndpoint) NPlaces() int  { return e.fabric.n }
func (e *localEndpoint) Stats() *Stats { return &e.stats }

func (e *localEndpoint) Handle(kind uint8, h Handler) {
	e.mu.Lock()
	e.handlers[kind] = h
	e.mu.Unlock()
}

func (e *localEndpoint) handler(kind uint8) Handler {
	e.mu.RLock()
	h := e.handlers[kind]
	e.mu.RUnlock()
	return h
}

func (e *localEndpoint) Alive(p int) bool { return e.fabric.Alive(p) }

// MarkDead records that place p failed, fabric-wide. The failure detector
// calls it when it declares a place dead, so every endpoint observes the
// death immediately — the analogue of the X10 runtime raising
// DeadPlaceException at all places (and of TCP.MarkDead).
func (e *localEndpoint) MarkDead(p int) {
	if p >= 0 && p < e.fabric.n {
		e.fabric.Kill(p)
	}
}

func (e *localEndpoint) checkLink(to int) error {
	if to < 0 || to >= e.fabric.n {
		return ErrDeadPlace
	}
	if !e.fabric.Alive(e.self) || !e.fabric.Alive(to) {
		return ErrDeadPlace
	}
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	return nil
}

// Send queues a one-way message for delivery at the destination.
func (e *localEndpoint) Send(to int, kind uint8, payload []byte) error {
	if err := e.checkLink(to); err != nil {
		return err
	}
	dst := e.fabric.eps[to]
	rb, p := copyToPool(payload)
	msg := localMsg{from: e.self, kind: kind, payload: p, rb: rb}
	select {
	case dst.queue <- msg:
	case <-dst.closed:
		rb.release()
		return ErrClosed
	}
	e.stats.SendsOut.Add(1)
	e.stats.BytesOut.Add(int64(len(payload)))
	return nil
}

// Call invokes the destination handler synchronously and returns its reply.
func (e *localEndpoint) Call(to int, kind uint8, payload []byte) ([]byte, error) {
	if err := e.checkLink(to); err != nil {
		return nil, err
	}
	dst := e.fabric.eps[to]
	h := dst.handler(kind)
	if h == nil {
		return nil, ErrNoHandler
	}
	e.stats.CallsOut.Add(1)
	e.stats.BytesOut.Add(int64(len(payload)))
	dst.stats.MsgsIn.Add(1)
	dst.stats.BytesIn.Add(int64(len(payload)))
	rb, p := copyToPool(payload)
	defer rb.release() // after the reply clone below: the reply may alias p
	reply, err := h(e.self, p)
	if err != nil {
		return nil, err
	}
	// A place that died while serving the request must not leak a reply:
	// the caller would otherwise act on state from a failed node.
	if err := e.checkLink(to); err != nil {
		return nil, err
	}
	e.stats.RepliesIn.Add(1)
	return cloneBytes(reply), nil
}

func (e *localEndpoint) dispatch() {
	for {
		select {
		case msg := <-e.queue:
			if e.fabric.Alive(e.self) && e.fabric.Alive(msg.from) {
				if h := e.handler(msg.kind); h != nil {
					e.stats.MsgsIn.Add(1)
					e.stats.BytesIn.Add(int64(len(msg.payload)))
					h(msg.from, msg.payload) //nolint:errcheck // one-way: no reply path
				}
			}
			msg.rb.release()
		case <-e.closed:
			return
		}
	}
}

func (e *localEndpoint) Close() error {
	e.closeOnce.Do(func() { close(e.closed) })
	return nil
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
