package transport

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLocalCallRoundTrip(t *testing.T) {
	f := NewLocalFabric(2)
	defer f.Close()
	f.Endpoint(1).Handle(7, func(from int, payload []byte) ([]byte, error) {
		if from != 0 {
			t.Errorf("from = %d, want 0", from)
		}
		out := append([]byte("echo:"), payload...)
		return out, nil
	})
	reply, err := f.Endpoint(0).Call(1, 7, []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q, want %q", reply, "echo:hi")
	}
}

func TestLocalCallNoHandler(t *testing.T) {
	f := NewLocalFabric(2)
	defer f.Close()
	if _, err := f.Endpoint(0).Call(1, 9, nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestLocalSendOrdered(t *testing.T) {
	f := NewLocalFabric(2)
	defer f.Close()
	const n = 500
	got := make([]uint32, 0, n)
	done := make(chan struct{})
	f.Endpoint(1).Handle(1, func(from int, payload []byte) ([]byte, error) {
		got = append(got, binary.LittleEndian.Uint32(payload))
		if len(got) == n {
			close(done)
		}
		return nil, nil
	})
	for i := 0; i < n; i++ {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(i))
		if err := f.Endpoint(0).Send(1, 1, b[:]); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out after %d messages", len(got))
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("message %d = %d: per-pair ordering violated", i, v)
		}
	}
}

func TestLocalDeadPlace(t *testing.T) {
	f := NewLocalFabric(3)
	defer f.Close()
	f.Endpoint(2).Handle(1, func(int, []byte) ([]byte, error) { return nil, nil })
	f.Kill(2)
	if _, err := f.Endpoint(0).Call(2, 1, nil); !errors.Is(err, ErrDeadPlace) {
		t.Fatalf("Call to dead place: err = %v, want ErrDeadPlace", err)
	}
	if err := f.Endpoint(0).Send(2, 1, nil); !errors.Is(err, ErrDeadPlace) {
		t.Fatalf("Send to dead place: err = %v, want ErrDeadPlace", err)
	}
	// A dead place cannot originate traffic either.
	if _, err := f.Endpoint(2).Call(0, 1, nil); !errors.Is(err, ErrDeadPlace) {
		t.Fatalf("Call from dead place: err = %v, want ErrDeadPlace", err)
	}
	if !f.Alive(0) || f.Alive(2) {
		t.Fatalf("Alive: got (0:%v, 2:%v), want (true, false)", f.Alive(0), f.Alive(2))
	}
}

func TestLocalPayloadIsolation(t *testing.T) {
	f := NewLocalFabric(2)
	defer f.Close()
	var captured []byte
	f.Endpoint(1).Handle(1, func(_ int, payload []byte) ([]byte, error) {
		//dpx10:allow placeleak this test aliases on purpose to prove the fabric clones
		captured = payload
		return payload, nil //dpx10:allow placeleak deliberate alias, see above
	})
	orig := []byte{1, 2, 3}
	reply, err := f.Endpoint(0).Call(1, 1, orig)
	if err != nil {
		t.Fatal(err)
	}
	orig[0] = 99
	if captured[0] != 1 {
		t.Fatal("handler payload aliases the sender's buffer")
	}
	captured[1] = 88
	if reply[1] != 2 {
		t.Fatal("caller reply aliases the handler's buffer")
	}
}

func TestLocalConcurrentCalls(t *testing.T) {
	f := NewLocalFabric(4)
	defer f.Close()
	var served atomic.Int64
	for p := 0; p < 4; p++ {
		f.Endpoint(p).Handle(1, func(int, []byte) ([]byte, error) {
			served.Add(1)
			return []byte{1}, nil
		})
	}
	var wg sync.WaitGroup
	const perPlace = 200
	for p := 0; p < 4; p++ {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(p, g int) {
				defer wg.Done()
				for i := 0; i < perPlace; i++ {
					to := (p + 1 + i%3) % 4
					if _, err := f.Endpoint(p).Call(to, 1, nil); err != nil {
						t.Errorf("Call: %v", err)
						return
					}
				}
			}(p, g)
		}
	}
	wg.Wait()
	if got := served.Load(); got != 4*4*perPlace {
		t.Fatalf("served = %d, want %d", got, 4*4*perPlace)
	}
}

func TestLocalStats(t *testing.T) {
	f := NewLocalFabric(2)
	defer f.Close()
	f.Endpoint(1).Handle(1, func(_ int, p []byte) ([]byte, error) { return p, nil }) //dpx10:allow placeleak echo handler; the fabric clones replies
	payload := make([]byte, 10)
	for i := 0; i < 3; i++ {
		if _, err := f.Endpoint(0).Call(1, 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	s0 := f.Endpoint(0).Stats().Snapshot()
	s1 := f.Endpoint(1).Stats().Snapshot()
	if s0.CallsOut != 3 || s0.BytesOut != 30 || s0.RepliesIn != 3 {
		t.Fatalf("sender stats = %+v", s0)
	}
	if s1.MsgsIn != 3 || s1.BytesIn != 30 {
		t.Fatalf("receiver stats = %+v", s1)
	}
}

func TestLocalClosedEndpoint(t *testing.T) {
	f := NewLocalFabric(2)
	ep := f.Endpoint(0)
	f.Close()
	if _, err := ep.Call(1, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after close: err = %v, want ErrClosed", err)
	}
}
