package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedTraffic drives a fixed message sequence through a wrapped
// endpoint and returns the observed delivery outcomes.
func scriptedTraffic(t *testing.T, plan *FaultPlan) (delivered int, failed int, stats InjectStats) {
	t.Helper()
	fab := NewLocalFabric(2)
	defer fab.Close()
	var got atomic.Int64
	fab.Endpoint(1).Handle(7, func(from int, payload []byte) ([]byte, error) {
		got.Add(1)
		return []byte{1}, nil
	})
	ep := NewFaultFabric(fab.Endpoint(0), plan)
	defer ep.Close()
	for i := 0; i < 200; i++ {
		if _, err := ep.Call(1, 7, []byte{byte(i)}); err != nil {
			failed++
		} else {
			delivered++
		}
	}
	return delivered, failed, plan.Stats()
}

func TestFaultPlanSeededReproducibility(t *testing.T) {
	mk := func(seed int64) *FaultPlan {
		return &FaultPlan{Seed: seed, Drop: 0.2, Dup: 0.1}
	}
	d1, f1, s1 := scriptedTraffic(t, mk(42))
	d2, f2, s2 := scriptedTraffic(t, mk(42))
	if d1 != d2 || f1 != f2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d,%d,%+v) vs (%d,%d,%+v)", d1, f1, s1, d2, f2, s2)
	}
	if f1 == 0 {
		t.Fatalf("drop=0.2 over 200 calls injected nothing")
	}
	_, f3, _ := scriptedTraffic(t, mk(43))
	if f3 == f1 {
		t.Logf("different seeds coincided (possible but unlikely): %d drops", f3)
	}
}

func TestFaultDropSurfacesUnreachable(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	fab.Endpoint(1).Handle(7, func(int, []byte) ([]byte, error) { return nil, nil })
	ep := NewFaultFabric(fab.Endpoint(0), &FaultPlan{Seed: 1, Drop: 1})
	defer ep.Close()
	if _, err := ep.Call(1, 7, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dropped call: got %v, want ErrUnreachable", err)
	}
	if err := ep.Send(1, 7, nil); err != nil {
		t.Fatalf("dropped send must be silent, got %v", err)
	}
	if s := ep.plan.Stats(); s.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped)
	}
}

func TestFaultDuplicateExecutesHandlerTwice(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	var got atomic.Int64
	fab.Endpoint(1).Handle(7, func(int, []byte) ([]byte, error) {
		got.Add(1)
		return nil, nil
	})
	ep := NewFaultFabric(fab.Endpoint(0), &FaultPlan{Seed: 9, Dup: 1})
	if _, err := ep.Call(1, 7, []byte{1}); err != nil {
		t.Fatalf("call: %v", err)
	}
	ep.Close() // waits for the async duplicate
	if n := got.Load(); n != 2 {
		t.Fatalf("handler ran %d times, want 2 (original + duplicate)", n)
	}
}

func TestFaultDelayDeliversLate(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	done := make(chan struct{}, 4)
	fab.Endpoint(1).Handle(7, func(int, []byte) ([]byte, error) {
		done <- struct{}{}
		return nil, nil
	})
	ep := NewFaultFabric(fab.Endpoint(0), &FaultPlan{
		Seed: 3, Delay: 1, DelayMin: time.Millisecond, DelayMax: 2 * time.Millisecond,
	})
	defer ep.Close()
	if err := ep.Send(1, 7, []byte{1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("delayed send never delivered")
	}
}

func TestFaultCloseReleasesDelayedSends(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	fab.Endpoint(1).Handle(7, func(int, []byte) ([]byte, error) { return nil, nil })
	ep := NewFaultFabric(fab.Endpoint(0), &FaultPlan{
		Seed: 3, Delay: 1, DelayMin: time.Hour, DelayMax: time.Hour + time.Second,
	})
	if err := ep.Send(1, 7, []byte{1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	closed := make(chan struct{})
	go func() { ep.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on an hour-long delayed send")
	}
}

func TestFaultAsymmetricPartition(t *testing.T) {
	fab := NewLocalFabric(3)
	defer fab.Close()
	for p := 0; p < 3; p++ {
		fab.Endpoint(p).Handle(7, func(int, []byte) ([]byte, error) { return []byte{1}, nil })
	}
	plan := &FaultPlan{
		Seed: 5,
		Partitions: []Partition{
			{From: 0, To: 1, Start: 0, End: 50 * time.Millisecond},
		},
	}
	plan.Activate()
	e0 := NewFaultFabric(fab.Endpoint(0), plan)
	defer e0.Close()
	e1 := NewFaultFabric(fab.Endpoint(1), plan)
	defer e1.Close()

	if _, err := e0.Call(1, 7, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("0->1 inside partition window: got %v, want ErrUnreachable", err)
	}
	// Asymmetric: the reverse direction stays open.
	if _, err := e1.Call(0, 7, nil); err != nil {
		t.Fatalf("1->0 must pass (asymmetric partition): %v", err)
	}
	// Unmatched link is unaffected.
	if _, err := e0.Call(2, 7, nil); err != nil {
		t.Fatalf("0->2 must pass: %v", err)
	}
	// After the window closes the link heals.
	deadline := time.After(5 * time.Second)
	for {
		if _, err := e0.Call(1, 7, nil); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("0->1 never healed after the partition window")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if plan.Stats().Partitioned == 0 {
		t.Fatal("partition drops not counted")
	}
}

func TestFaultOnInjectObserves(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	fab.Endpoint(1).Handle(7, func(int, []byte) ([]byte, error) { return nil, nil })
	var mu sync.Mutex
	var faults []string
	plan := &FaultPlan{Seed: 2, Drop: 1, OnInject: func(ev InjectEvent) {
		mu.Lock()
		faults = append(faults, ev.Fault)
		mu.Unlock()
	}}
	ep := NewFaultFabric(fab.Endpoint(0), plan)
	defer ep.Close()
	ep.Send(1, 7, nil) //nolint:errcheck
	mu.Lock()
	defer mu.Unlock()
	if len(faults) != 1 || faults[0] != "drop" {
		t.Fatalf("faults = %v, want [drop]", faults)
	}
}

func TestFaultNilPlanIsTransparent(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	fab.Endpoint(1).Handle(7, func(int, []byte) ([]byte, error) { return []byte{9}, nil })
	ep := NewFaultFabric(fab.Endpoint(0), nil)
	defer ep.Close()
	reply, err := ep.Call(1, 7, nil)
	if err != nil || len(reply) != 1 || reply[0] != 9 {
		t.Fatalf("pass-through call: reply=%v err=%v", reply, err)
	}
}
