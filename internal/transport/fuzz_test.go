package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the TCP framing against corrupt input: arbitrary
// bytes must never panic or allocate unboundedly, and every frame written
// by writeFrame must read back identically.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	writeFrame(&good, 3, flagRequestMarker, 1, 42, []byte("payload")) //nolint:errcheck
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// Oversized length field.
	var huge bytes.Buffer
	writeFrame(&huge, 1, 0, 0, 0, nil) //nolint:errcheck
	b := huge.Bytes()
	b[14], b[15], b[16], b[17] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(b)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, flags, from, seq, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := writeFrame(&out, kind, flags, from, seq, payload); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		k2, f2, from2, seq2, p2, err2 := readFrame(bytes.NewReader(out.Bytes()))
		if err2 != nil || k2 != kind || f2 != flags || from2 != from || seq2 != seq || !bytes.Equal(p2, payload) {
			t.Fatalf("frame round trip mismatch (err=%v)", err2)
		}
	})
}

// FuzzWireError hardens the error-identity encoding.
func FuzzWireError(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeWireError(ErrDeadPlace))
	f.Add(encodeWireError(ErrNoHandler))
	f.Fuzz(func(t *testing.T, data []byte) {
		err := decodeWireError(data)
		if err == nil {
			t.Fatal("decodeWireError returned nil")
		}
		if len(data) > 0 && data[0] == 1 && err != ErrDeadPlace {
			t.Fatal("dead-place marker lost")
		}
	})
}
