package transport

import (
	"testing"

	"github.com/dpx10/dpx10/internal/leakcheck"
)

// TestMain fails the package if a fabric or TCP endpoint leaves its
// delivery or readLoop goroutines running after the tests.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
