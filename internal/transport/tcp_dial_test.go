package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// unreachableAddr returns a loopback address with nothing listening on it.
func unreachableAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Regression test for holding the connection-table lock across the dial
// retry loop (found by dpx10-vet's lockheld analyzer): while one peer is
// down and being dialed, traffic to healthy peers must not stall. Before
// the fix, conn() held cmu for up to dialTimeout and this test's healthy
// Call waited the full window.
func TestTCPDialDoesNotBlockOtherPeers(t *testing.T) {
	eps := newTCPCluster(t, 3)
	eps[0].dialTimeout = 3 * time.Second
	eps[0].addrs[2] = unreachableAddr(t)
	eps[1].Handle(1, func(int, []byte) ([]byte, error) { return []byte{1}, nil })

	slow := make(chan error, 1)
	go func() {
		_, err := eps[0].Call(2, 1, nil)
		slow <- err
	}()
	time.Sleep(150 * time.Millisecond) // let the dial retry loop start

	start := time.Now()
	if _, err := eps[0].Call(1, 1, nil); err != nil {
		t.Fatalf("call to healthy peer: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("call to healthy peer took %v while peer 2 was being dialed", d)
	}
	if err := <-slow; err == nil {
		t.Fatal("call to unreachable peer unexpectedly succeeded")
	}
}

// Close during an in-flight dial must return promptly and must not let the
// settling dial resurrect the closed connection table.
func TestTCPCloseUnblocksDial(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[0].dialTimeout = 10 * time.Second
	eps[0].addrs[1] = unreachableAddr(t)

	errc := make(chan error, 1)
	go func() {
		_, err := eps[0].Call(1, 1, nil)
		errc <- err
	}()
	time.Sleep(150 * time.Millisecond)

	start := time.Now()
	eps[0].Close()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v during an in-flight dial", d)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDeadPlace) {
			t.Fatalf("dialing call returned %v, want ErrClosed or ErrDeadPlace", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dialing call did not return after Close")
	}

	eps[0].cmu.Lock()
	defer eps[0].cmu.Unlock()
	if eps[0].conns[1] != nil {
		t.Fatal("dial resurrected the connection table after Close")
	}
}

// Concurrent conn() calls to the same peer must share one dial: the gate
// serializes them, and everyone ends up on the same connection.
func TestTCPConcurrentDialSingleflight(t *testing.T) {
	eps := newTCPCluster(t, 2)
	eps[1].Handle(1, func(int, []byte) ([]byte, error) { return []byte{1}, nil })

	const n = 8
	conns := make(chan *tcpConn, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			tc, err := eps[0].conn(1)
			conns <- tc
			errs <- err
		}()
	}
	var first *tcpConn
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("conn: %v", err)
		}
		tc := <-conns
		if first == nil {
			first = tc
		} else if tc != first {
			t.Fatal("concurrent dials produced distinct connections")
		}
	}
}
