package transport

import (
	"testing"

	"github.com/dpx10/dpx10/internal/metrics"
)

// TestMeteredMatchesEndpointStats drives traffic through metered
// endpoints and checks the per-kind registry counts sum to exactly the
// numbers the raw endpoints counted on their own.
func TestMeteredMatchesEndpointStats(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	regs := [2]*metrics.Registry{metrics.New(0), metrics.New(1)}
	var trs [2]Transport
	for p := 0; p < 2; p++ {
		trs[p] = NewMetered(fab.Endpoint(p), regs[p])
	}
	echoed := make(chan struct{}, 64)
	for p := 0; p < 2; p++ {
		trs[p].Handle(7, func(from int, payload []byte) ([]byte, error) {
			return append([]byte(nil), payload...), nil
		})
		trs[p].Handle(9, func(from int, payload []byte) ([]byte, error) {
			echoed <- struct{}{}
			return nil, nil
		})
	}

	for i := 0; i < 5; i++ {
		if _, err := trs[0].Call(1, 7, []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := trs[0].Send(1, 9, []byte("xy")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		<-echoed // one-way delivery is async; wait until counted
	}

	s0 := regs[0].Snapshot()
	out := s0.Vecs[metrics.TransportMsgsOut]
	if out[7] != 5 || out[9] != 3 {
		t.Fatalf("msgs_out = %v, want kind7=5 kind9=3", out)
	}
	bytesOut := s0.Vecs[metrics.TransportBytesOut]
	if bytesOut[7] != 20 || bytesOut[9] != 6 {
		t.Fatalf("bytes_out = %v, want kind7=20 kind9=6", bytesOut)
	}

	ep0 := fab.Endpoint(0).Stats().Snapshot()
	if got := out[7] + out[9]; got != ep0.SendsOut+ep0.CallsOut {
		t.Fatalf("meter msgs_out %d != endpoint %d", got, ep0.SendsOut+ep0.CallsOut)
	}
	if got := bytesOut[7] + bytesOut[9]; got != ep0.BytesOut {
		t.Fatalf("meter bytes_out %d != endpoint %d", got, ep0.BytesOut)
	}

	s1 := regs[1].Snapshot()
	in := s1.Vecs[metrics.TransportMsgsIn]
	ep1 := fab.Endpoint(1).Stats().Snapshot()
	if got := in[7] + in[9]; got != ep1.MsgsIn {
		t.Fatalf("meter msgs_in %d != endpoint %d", got, ep1.MsgsIn)
	}
	if got := s1.Vecs[metrics.TransportBytesIn][7] + s1.Vecs[metrics.TransportBytesIn][9]; got != ep1.BytesIn {
		t.Fatalf("meter bytes_in %d != endpoint %d", got, ep1.BytesIn)
	}
}

// TestMeteredErrors checks failed sends are recorded as errors, not as
// wire traffic — matching the endpoint, which does not count them either.
func TestMeteredErrors(t *testing.T) {
	fab := NewLocalFabric(2)
	defer fab.Close()
	reg := metrics.New(0)
	tr := NewMetered(fab.Endpoint(0), reg)
	fab.Kill(1)
	if err := tr.Send(1, 7, []byte("a")); err == nil {
		t.Fatal("send to dead place succeeded")
	}
	if _, err := tr.Call(1, 7, nil); err == nil {
		t.Fatal("call to dead place succeeded")
	}
	s := reg.Snapshot()
	if got := s.Counters[metrics.TransportSendErrors]; got != 2 {
		t.Fatalf("send_errors = %d, want 2", got)
	}
	if n := len(s.Vecs[metrics.TransportMsgsOut]); n != 0 {
		t.Fatalf("failed traffic counted as sent: %v", s.Vecs[metrics.TransportMsgsOut])
	}
	if out := fab.Endpoint(0).Stats().Snapshot(); out.SendsOut+out.CallsOut != 0 {
		t.Fatalf("endpoint counted failed traffic: %+v", out)
	}
}

// TestMeteredDisabled checks a nil registry adds no wrapper at all.
func TestMeteredDisabled(t *testing.T) {
	fab := NewLocalFabric(1)
	defer fab.Close()
	ep := fab.Endpoint(0)
	if got := NewMetered(ep, nil); got != ep {
		t.Fatal("disabled meter did not return the raw endpoint")
	}
}
