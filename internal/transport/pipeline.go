package transport

import (
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"net"
	"sync"
)

// TCPOptions tunes the pipelined data plane of a TCP endpoint. The zero
// value enables everything with defaults: batched writev framing and
// payload compression above 1 KiB.
type TCPOptions struct {
	// NoPipeline disables the per-peer send pipeline: every frame is
	// written directly under a per-connection mutex, one header+payload
	// write pair per message, exactly the pre-pipeline wire dialect (no
	// preamble, no batches, no compression). Peers in either mode
	// interoperate — the preamble marks the dialect per connection.
	NoPipeline bool
	// NoCompress keeps the pipeline but never compresses payloads.
	NoCompress bool
	// CompressMin is the smallest payload the writer will try to
	// compress; below it the flate overhead outweighs the saving.
	// Default 1024.
	CompressMin int
}

func (o *TCPOptions) normalize() {
	if o.CompressMin <= 0 {
		o.CompressMin = 1024
	}
}

// PipeObserver receives data-plane events from a TCP endpoint's send
// pipeline; the node layer uses it to feed metrics histograms without the
// transport importing the metrics package. Set it before any traffic.
// Callbacks run on writer goroutines and must not block.
type PipeObserver struct {
	// Flush observes one writev batch: how many frames it carried and
	// its total wire size.
	Flush func(frames, wireBytes int)
	// Compress observes one compressed payload: original and wire sizes.
	Compress func(rawBytes, wireBytes int)
}

// outFrame is one queued outbound frame. The payload slice is the
// sender's own buffer — never copied; the sender blocks until the writer
// has flushed the frame, so the buffer is free for reuse the moment Send
// or Call returns (group commit).
type outFrame struct {
	kind, flags uint8
	seq         uint64
	payload     []byte
}

// tcpConn is one established connection and its send pipeline.
//
// Exactly one side writes to any given connection (each endpoint dials
// its own conn for outbound traffic, including Call responses), so the
// writer goroutine is the connection's single writer. Senders append to
// the queue under mu and wait on cond until the writer reports their
// frame flushed; the writer swaps the whole queue out, packs it into one
// net.Buffers writev — headers from a per-connection arena, payloads
// referenced in place — and broadcasts completion. Batching is emergent:
// while one writev is in flight, every new sender parks in the queue, and
// the next swap takes them all at once.
type tcpConn struct {
	c net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	q       []outFrame
	enq     uint64 // frames ever queued
	flushed uint64 // frames confirmed on the wire
	werr    error  // sticky pipeline error; set once, with down
	down    bool

	// Writer-owned state; no locking (single writer goroutine). In
	// NoPipeline mode mu serializes direct writes instead and none of
	// this is used.
	features     uint64
	preambleSent bool
	compressMin  int // 0 = compression off
	hdr          []byte
	spans        []span
	iov          net.Buffers
	cw           *flate.Writer
	cbuf         []byte
	res          []pendFrame
	free         []outFrame // previous batch, payloads already nilled
}

// pendFrame is a frame's resolved wire form within one flush: final flags,
// wire payload length, and the compressed payload's arena span when
// flagCompressed was applied.
type pendFrame struct {
	flags uint8
	plen  int
	comp  span
}

// span marks a region of a writer arena (header block or compressed
// payload scratch), recorded as offsets because the arena may reallocate
// while the batch is being assembled.
type span struct{ off, end int }

func newTCPConn(c net.Conn, opts *TCPOptions) *tcpConn {
	tc := &tcpConn{c: c}
	tc.cond = sync.NewCond(&tc.mu)
	if !opts.NoPipeline {
		tc.features = featBatch
		if !opts.NoCompress {
			tc.features |= featCompress
			tc.compressMin = opts.CompressMin
		}
	}
	return tc
}

// enqueue hands one frame to the writer and blocks until it has been
// flushed to the socket (or the pipeline died). On return the payload
// buffer is no longer referenced by the transport.
func (tc *tcpConn) enqueue(kind, flags uint8, seq uint64, payload []byte) error {
	tc.mu.Lock()
	if tc.down {
		err := tc.werr
		tc.mu.Unlock()
		return err
	}
	ticket := tc.enq
	tc.enq++
	tc.q = append(tc.q, outFrame{kind: kind, flags: flags, seq: seq, payload: payload})
	tc.cond.Broadcast() // wake the writer (and no one else is waiting on this ticket yet)
	for tc.flushed <= ticket && !tc.down {
		tc.cond.Wait()
	}
	var err error
	if tc.flushed <= ticket {
		err = tc.werr
	}
	tc.mu.Unlock()
	return err
}

// shutdown kills the pipeline: the writer exits, parked senders fail with
// err, future enqueues fail immediately. Idempotent.
func (tc *tcpConn) shutdown(err error) {
	tc.mu.Lock()
	if !tc.down {
		tc.down = true
		tc.werr = err
	}
	tc.cond.Broadcast()
	tc.mu.Unlock()
}

// writeLoop is the connection's writer goroutine: swap out everything
// queued, pack it into one vectored write, confirm, repeat. It exits when
// the pipeline is shut down (connection drop or endpoint close).
func (t *TCP) writeLoop(tc *tcpConn) {
	for {
		tc.mu.Lock()
		for len(tc.q) == 0 && !tc.down {
			tc.cond.Wait()
		}
		if tc.down {
			tc.mu.Unlock()
			return
		}
		batch := tc.q
		tc.q = tc.free[:0]
		tc.mu.Unlock()

		wire, err := tc.flush(t, batch)
		if err == nil {
			t.stats.WriteCalls.Add(1)
			t.stats.FramesOut.Add(int64(len(batch)))
			t.stats.WireBytesOut.Add(int64(wire))
			if f := t.obs.Flush; f != nil {
				f(len(batch), wire)
			}
		}

		// Drop payload references before confirming: once flushed is
		// advanced the senders will reuse those buffers.
		for i := range batch {
			batch[i].payload = nil
		}
		tc.free = batch

		tc.mu.Lock()
		tc.flushed += uint64(len(batch))
		if err != nil && !tc.down {
			tc.down = true
			tc.werr = err
		}
		tc.cond.Broadcast()
		tc.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// flush writes one batch as a single vectored write: [preamble] plus
// either one classic frame or a multi-frame batch envelope. Headers live
// in the connection's arena; payloads are referenced where the senders
// put them — the only bytes ever copied are compressed payloads, which
// are transformed, not moved. Returns the wire size written.
func (tc *tcpConn) flush(t *TCP, batch []outFrame) (int, error) {
	tc.hdr = tc.hdr[:0]
	tc.cbuf = tc.cbuf[:0]
	tc.spans = tc.spans[:0]
	iov := tc.iov[:0]

	// Resolve payloads first (compression grows cbuf, so only offsets are
	// stable until the arena stops moving).
	res := tc.res[:0]
	for i := range batch {
		f := &batch[i]
		r := pendFrame{flags: f.flags, plen: len(f.payload)}
		if tc.compressMin > 0 && len(f.payload) >= tc.compressMin && f.flags&flagControl == 0 {
			if sp, ok := tc.compress(f.payload); ok {
				r.flags |= flagCompressed
				r.plen = sp.end - sp.off
				r.comp = sp
				if cb := t.obs.Compress; cb != nil {
					cb(len(f.payload), r.plen)
				}
			}
		}
		res = append(res, r)
	}
	tc.res = res

	// Header arena, then iovec assembly from stable offsets.
	preamble := span{-1, -1}
	if !tc.preambleSent && tc.features != 0 {
		s := len(tc.hdr)
		tc.hdr = putFrameHeader(tc.hdr, 0, flagControl, t.self, tc.features, 0, 0)
		preamble = span{s, len(tc.hdr)}
		tc.preambleSent = true
	}
	outer := span{-1, -1}
	if len(batch) == 1 {
		f, r := &batch[0], &res[0]
		crc := crc32.Checksum(tc.payloadOf(f, r.comp, r.flags), crcTable)
		s := len(tc.hdr)
		tc.hdr = putFrameHeader(tc.hdr, f.kind, r.flags, t.self, f.seq, r.plen, crc)
		outer = span{s, len(tc.hdr)}
	} else {
		total := 0
		for i := range res {
			total += subHeaderLen + res[i].plen
		}
		s := len(tc.hdr)
		tc.hdr = putFrameHeader(tc.hdr, 0, flagBatch, t.self, uint64(len(batch)), total, 0)
		outer = span{s, len(tc.hdr)}
		crc := uint32(0)
		for i := range batch {
			f, r := &batch[i], &res[i]
			hs := len(tc.hdr)
			tc.hdr = putSubHeader(tc.hdr, f.kind, r.flags, f.seq, r.plen)
			tc.spans = append(tc.spans, span{hs, len(tc.hdr)})
			crc = crc32.Update(crc, crcTable, tc.hdr[hs:len(tc.hdr)])
			crc = crc32.Update(crc, crcTable, tc.payloadOf(f, r.comp, r.flags))
		}
		binary.LittleEndian.PutUint32(tc.hdr[outer.off+18:outer.off+22], crc)
	}

	// The arenas are final; build the iovec list.
	wire := 0
	add := func(b []byte) {
		if len(b) > 0 {
			iov = append(iov, b)
			wire += len(b)
		}
	}
	if preamble.off >= 0 {
		add(tc.hdr[preamble.off:preamble.end])
	}
	add(tc.hdr[outer.off:outer.end])
	for i := range batch {
		if len(batch) > 1 {
			sp := tc.spans[i]
			add(tc.hdr[sp.off:sp.end])
		}
		add(tc.payloadOf(&batch[i], res[i].comp, res[i].flags))
	}

	arena := iov
	_, err := iov.WriteTo(tc.c) // WriteTo consumes iov; arena keeps the backing array
	full := arena[:cap(arena)]
	for i := range full {
		full[i] = nil // drop payload references so senders' buffers aren't pinned
	}
	tc.iov = full[:0]
	return wire, err
}

// payloadOf returns the wire payload for a frame: the sender's buffer, or
// its compressed form in the cbuf arena.
func (tc *tcpConn) payloadOf(f *outFrame, comp span, flags uint8) []byte {
	if flags&flagCompressed != 0 {
		return tc.cbuf[comp.off:comp.end]
	}
	return f.payload
}

// compress appends `origLen u32 | DEFLATE(p)` to the cbuf arena and
// returns its span. Reports false — leaving the frame uncompressed — when
// deflate does not actually shrink the payload.
func (tc *tcpConn) compress(p []byte) (span, bool) {
	start := len(tc.cbuf)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(p)))
	tc.cbuf = append(tc.cbuf, lenb[:]...)
	if tc.cw == nil {
		tc.cw, _ = flate.NewWriter((*sliceSink)(&tc.cbuf), flate.BestSpeed)
	} else {
		tc.cw.Reset((*sliceSink)(&tc.cbuf))
	}
	tc.cw.Write(p) //nolint:errcheck // sliceSink cannot fail
	tc.cw.Close()  //nolint:errcheck
	if len(tc.cbuf)-start >= len(p) {
		tc.cbuf = tc.cbuf[:start]
		return span{}, false
	}
	return span{start, len(tc.cbuf)}, true
}

// sliceSink is an io.Writer appending to a byte-slice arena in place.
type sliceSink []byte

func (s *sliceSink) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}
