package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format, little-endian:
//
//	kind   uint8   message kind (application-defined)
//	flags  uint8   see flag bits below
//	from   uint32  sender place id
//	seq    uint64  request sequence number (echoed in the response)
//	length uint32  payload length
//	crc    uint32  IEEE CRC-32 of the payload
//	payload [length]byte
//
// Response frames carry kind=0 and, when flagError is set, the payload is
// an error string instead of reply data. The checksum guards against
// framing bugs and partial writes — a corrupted frame kills the
// connection rather than delivering garbage to a handler.
//
// The pipelined data plane adds three frame forms on top of the classic
// one, each selected by a flag bit:
//
//   - Control (flagControl): a connection preamble. The seq field carries
//     the feature bits the writer will use on this connection (featBatch,
//     featCompress); the payload is empty. A writer that uses any extended
//     form sends the preamble first; a reader that sees unknown feature
//     bits kills the connection instead of misparsing later traffic. A
//     first frame without flagControl marks a legacy (classic-only) peer.
//
//   - Batch (flagBatch, kind=0): a multi-frame envelope. The seq field is
//     the sub-frame count, the payload is the concatenation of sub-frames
//     `kind u8 | flags u8 | seq u64 | length u32 | payload`, and the outer
//     CRC covers the whole payload (sub-frames carry no individual CRC).
//     Batching lets one writev carry many messages — data decrements,
//     piggybacked acks and small fetch replies coalesce into one syscall.
//
//   - Compressed payload (flagCompressed, per frame or per sub-frame): the
//     payload is `origLen u32 | DEFLATE stream`. Applied by the writer to
//     payloads at or above its negotiated threshold when the compressed
//     form is actually smaller.
const (
	frameHeaderLen = 1 + 1 + 4 + 8 + 4 + 4

	// subHeaderLen is the per-sub-frame header inside a batch envelope:
	// kind u8, flags u8, seq u64, length u32. No from (the envelope names
	// the sender) and no CRC (the envelope CRC covers everything).
	subHeaderLen = 1 + 1 + 8 + 4

	flagResponse      = 1 << 0
	flagError         = 1 << 1
	flagRequestMarker = 1 << 2 // Call request (needs a response)
	flagBatch         = 1 << 3
	flagCompressed    = 1 << 4
	flagControl       = 1 << 5

	// Feature bits carried in a control preamble's seq field.
	featBatch    = 1 << 0
	featCompress = 1 << 1
	featAll      = featBatch | featCompress
)

// maxFrameLen bounds a single payload; larger frames indicate corruption.
const maxFrameLen = 1 << 28 // 256 MiB

var crcTable = crc32.IEEETable

// putFrameHeader appends a classic frame header to dst.
func putFrameHeader(dst []byte, kind, flags uint8, from int, seq uint64, length int, crc uint32) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	hdr[1] = flags
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(from))
	binary.LittleEndian.PutUint64(hdr[6:14], seq)
	binary.LittleEndian.PutUint32(hdr[14:18], uint32(length))
	binary.LittleEndian.PutUint32(hdr[18:22], crc)
	return append(dst, hdr[:]...)
}

// putSubHeader appends a batch sub-frame header to dst.
func putSubHeader(dst []byte, kind, flags uint8, seq uint64, length int) []byte {
	var hdr [subHeaderLen]byte
	hdr[0] = kind
	hdr[1] = flags
	binary.LittleEndian.PutUint64(hdr[2:10], seq)
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(length))
	return append(dst, hdr[:]...)
}

func writeFrame(w io.Writer, kind, flags uint8, from int, seq uint64, payload []byte) error {
	hdr := putFrameHeader(nil, kind, flags, from, seq, len(payload), crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (kind, flags uint8, from int, seq uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	kind = hdr[0]
	flags = hdr[1]
	from = int(binary.LittleEndian.Uint32(hdr[2:6]))
	seq = binary.LittleEndian.Uint64(hdr[6:14])
	n := binary.LittleEndian.Uint32(hdr[14:18])
	sum := binary.LittleEndian.Uint32(hdr[18:22])
	if n > maxFrameLen {
		err = fmt.Errorf("transport: frame too large (%d bytes)", n)
		return
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return
		}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		err = fmt.Errorf("transport: frame checksum mismatch (kind %d, %d bytes)", kind, n)
	}
	return
}

// walkBatch iterates the sub-frames of a CRC-verified batch payload,
// calling fn for each. It reports false on structural damage — a header
// that does not fit, a length past the end, trailing junk — or when fn
// itself reports failure.
func walkBatch(buf []byte, count uint64, fn func(kind, flags uint8, seq uint64, payload []byte) bool) bool {
	off := 0
	for i := uint64(0); i < count; i++ {
		if off+subHeaderLen > len(buf) {
			return false
		}
		kind := buf[off]
		flags := buf[off+1]
		seq := binary.LittleEndian.Uint64(buf[off+2 : off+10])
		n := int(binary.LittleEndian.Uint32(buf[off+10 : off+14]))
		off += subHeaderLen
		if n < 0 || n > len(buf)-off {
			return false
		}
		if !fn(kind, flags, seq, buf[off:off+n]) {
			return false
		}
		off += n
	}
	return off == len(buf)
}

// Wire errors preserve ErrDeadPlace identity across the connection so the
// engine's recovery trigger works in multi-process mode too.
func encodeWireError(err error) []byte {
	if err == ErrDeadPlace {
		return []byte("\x01" + err.Error())
	}
	return []byte("\x00" + err.Error())
}

func decodeWireError(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("transport: remote error")
	}
	if b[0] == 1 {
		return ErrDeadPlace
	}
	return fmt.Errorf("transport: remote error: %s", b[1:])
}
