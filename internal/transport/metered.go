package transport

import (
	"errors"

	"github.com/dpx10/dpx10/internal/metrics"
)

// Metered wraps a transport endpoint and mirrors its traffic into a
// metrics registry with per-kind granularity. It must sit directly above
// the raw endpoint — below the fault-injection and reliable-delivery
// layers — so that what it counts is exactly what crosses the wire:
// retries count once per attempt, chaos-dropped messages count at
// neither side, and duplicate deliveries count at the receiver before
// dedup discards them. The metrics-invariant tests rely on this to match
// the fabric's own Stats counters number for number.
type Metered struct {
	inner Transport

	msgsOut  *metrics.Vec
	bytesOut *metrics.Vec
	msgsIn   *metrics.Vec
	bytesIn  *metrics.Vec
	sendErrs *metrics.Counter
}

// NewMetered wraps inner so its traffic is recorded in reg. A disabled
// (nil) registry returns inner unchanged: metering off costs nothing.
func NewMetered(inner Transport, reg *metrics.Registry) Transport {
	if !reg.Enabled() {
		return inner
	}
	return &Metered{
		inner:    inner,
		msgsOut:  reg.Vec(metrics.TransportMsgsOut),
		bytesOut: reg.Vec(metrics.TransportBytesOut),
		msgsIn:   reg.Vec(metrics.TransportMsgsIn),
		bytesIn:  reg.Vec(metrics.TransportBytesIn),
		sendErrs: reg.Counter(metrics.TransportSendErrors),
	}
}

var _ Transport = (*Metered)(nil)

func (m *Metered) Self() int    { return m.inner.Self() }
func (m *Metered) NPlaces() int { return m.inner.NPlaces() }
func (m *Metered) Alive(p int) bool {
	return m.inner.Alive(p)
}
func (m *Metered) Close() error  { return m.inner.Close() }
func (m *Metered) Stats() *Stats { return m.inner.Stats() }

// MarkDead forwards a failure-detector verdict to the endpoint, which
// learns of deaths through this optional method rather than Transport.
func (m *Metered) MarkDead(p int) {
	if md, ok := m.inner.(interface{ MarkDead(int) }); ok {
		md.MarkDead(p)
	}
}

// Handle registers h wrapped with inbound accounting. The endpoint
// counts a message delivered exactly when it invokes the handler, so
// counting on entry keeps the meter in lockstep with endpoint Stats.
func (m *Metered) Handle(kind uint8, h Handler) {
	m.inner.Handle(kind, func(from int, payload []byte) ([]byte, error) {
		m.msgsIn.Add(kind, 1)
		m.bytesIn.Add(kind, int64(len(payload)))
		return h(from, payload)
	})
}

// linkError reports errors under which the endpoint did not count the
// message as sent: the link check or handler lookup failed before any
// bytes moved.
func linkError(err error) bool {
	return errors.Is(err, ErrDeadPlace) || errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrUnreachable) || errors.Is(err, ErrNoHandler)
}

func (m *Metered) Send(to int, kind uint8, payload []byte) error {
	err := m.inner.Send(to, kind, payload)
	if err != nil {
		m.sendErrs.Add(-1, 1)
		return err
	}
	m.msgsOut.Add(kind, 1)
	m.bytesOut.Add(kind, int64(len(payload)))
	return nil
}

func (m *Metered) Call(to int, kind uint8, payload []byte) ([]byte, error) {
	reply, err := m.inner.Call(to, kind, payload)
	// A request that reached the far handler counts as sent even when the
	// handler itself failed — that is when the endpoint counted it too.
	if err == nil || !linkError(err) {
		m.msgsOut.Add(kind, 1)
		m.bytesOut.Add(kind, int64(len(payload)))
	}
	if err != nil {
		m.sendErrs.Add(-1, 1)
	}
	return reply, err
}
