// Package transport provides the message fabric that connects DPX10 places.
//
// All cross-place traffic in the system — dependency fetches, indegree
// decrements, recovery transfers, and control messages — flows through a
// Transport. Two implementations are provided: an in-process fabric built
// on channels (LocalFabric) used for single-process runs and tests, and a
// TCP fabric (NewTCP) used when each place is its own OS process, which is
// how X10's Socket runtime deploys places.
//
// Handlers are registered per message kind. A handler must treat its
// payload as immutable and must not retain it after returning.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrDeadPlace is returned by Send and Call when the destination place has
// failed. It is the Go analogue of Resilient X10's DeadPlaceException: the
// DPX10 engine catches it and enters recovery mode.
var ErrDeadPlace = errors.New("transport: dead place")

// ErrClosed is returned once a transport endpoint has been closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnreachable is returned by Send and Call when a message could not be
// delivered but the destination is not known to be dead: an injected fault
// (FaultFabric) or a transient link failure. Unlike ErrDeadPlace it is
// retryable — the engine's reliable-delivery layer backs off and resends.
var ErrUnreachable = errors.New("transport: destination unreachable")

// ErrNoHandler is returned by Call when the destination has no handler
// registered for the message kind.
var ErrNoHandler = errors.New("transport: no handler for message kind")

// Handler processes one inbound message. For Call traffic the returned
// bytes are delivered to the caller; for Send traffic they are discarded.
type Handler func(from int, payload []byte) ([]byte, error)

// Transport is one place's view of the fabric.
//
// Send delivers a one-way message: it may return before the handler runs,
// but delivery between a given pair of places is ordered. Call delivers a
// request and blocks for the response. Both return ErrDeadPlace if the
// destination has failed.
type Transport interface {
	// Self is the place id of this endpoint.
	Self() int
	// NPlaces is the total number of places in the fabric.
	NPlaces() int
	// Handle registers the handler for a message kind. It must be called
	// before any message of that kind can arrive; registering the same
	// kind twice replaces the handler.
	Handle(kind uint8, h Handler)
	// Send delivers a one-way message to place `to`.
	Send(to int, kind uint8, payload []byte) error
	// Call delivers a request to place `to` and waits for the reply.
	Call(to int, kind uint8, payload []byte) ([]byte, error)
	// Alive reports whether place p is believed to be alive.
	Alive(p int) bool
	// Close shuts the endpoint down.
	Close() error
	// Stats returns this endpoint's traffic counters.
	Stats() *Stats
}

// Stats counts traffic at one endpoint. All fields are updated atomically
// and may be read while the transport is in use.
type Stats struct {
	SendsOut  atomic.Int64 // one-way messages sent
	CallsOut  atomic.Int64 // requests sent
	BytesOut  atomic.Int64 // payload bytes sent (requests + one-way)
	MsgsIn    atomic.Int64 // messages received (requests + one-way)
	BytesIn   atomic.Int64 // payload bytes received
	RepliesIn atomic.Int64 // call replies received

	// Data-plane counters (TCP endpoints only): actual socket activity
	// after batching and compression, as opposed to the logical message
	// counters above. WireBytesOut/FramesOut vs BytesOut is the framing
	// overhead; FramesOut/WriteCalls is the mean writev batch size.
	WriteCalls   atomic.Int64 // write/writev syscalls issued
	FramesOut    atomic.Int64 // frames put on the wire (batch sub-frames count individually)
	WireBytesOut atomic.Int64 // total bytes written, headers and compression included
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		SendsOut:  s.SendsOut.Load(),
		CallsOut:  s.CallsOut.Load(),
		BytesOut:  s.BytesOut.Load(),
		MsgsIn:    s.MsgsIn.Load(),
		BytesIn:   s.BytesIn.Load(),
		RepliesIn: s.RepliesIn.Load(),

		WriteCalls:   s.WriteCalls.Load(),
		FramesOut:    s.FramesOut.Load(),
		WireBytesOut: s.WireBytesOut.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	SendsOut  int64
	CallsOut  int64
	BytesOut  int64
	MsgsIn    int64
	BytesIn   int64
	RepliesIn int64

	WriteCalls   int64
	FramesOut    int64
	WireBytesOut int64
}

// Add accumulates another snapshot into s.
func (s *StatsSnapshot) Add(o StatsSnapshot) {
	s.SendsOut += o.SendsOut
	s.CallsOut += o.CallsOut
	s.BytesOut += o.BytesOut
	s.MsgsIn += o.MsgsIn
	s.BytesIn += o.BytesIn
	s.RepliesIn += o.RepliesIn
	s.WriteCalls += o.WriteCalls
	s.FramesOut += o.FramesOut
	s.WireBytesOut += o.WireBytesOut
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("sends=%d calls=%d bytesOut=%d msgsIn=%d bytesIn=%d wireOut=%d writes=%d",
		s.SendsOut, s.CallsOut, s.BytesOut, s.MsgsIn, s.BytesIn, s.WireBytesOut, s.WriteCalls)
}
