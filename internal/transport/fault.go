package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan is a seeded, reproducible chaos schedule. One plan is shared by
// every wrapped endpoint of a run; per-message decisions are derived from a
// hash of (seed, sender, destination, kind, per-link counter), so the same
// plan over the same message sequence injects the same faults. Concurrency
// can vary the sequence between runs, so reproducibility is statistical,
// not bitwise — what is exactly reproducible is the decision each message
// position on each link receives.
//
// Probabilities are per message; zero fields inject nothing. A plan must
// not be reused across runs: Activate pins its clock to the first run that
// touches it.
type FaultPlan struct {
	// Seed selects the pseudo-random injection schedule.
	Seed int64
	// Drop is the probability a message is lost. One-way messages vanish
	// silently; for Calls the loss hits the request or the reply leg (half
	// each) and surfaces as ErrUnreachable.
	Drop float64
	// Dup is the probability a delivered message is delivered twice. The
	// duplicate of a Call executes the remote handler a second time,
	// concurrently — exactly the replay the dedup layer must absorb.
	Dup float64
	// Delay is the probability a message is held back before delivery, for
	// a duration in [DelayMin, DelayMax) drawn from the schedule. Delayed
	// messages overtake each other: delay is also the reordering fault.
	Delay    float64
	DelayMin time.Duration
	DelayMax time.Duration
	// Partitions are asymmetric link blocks: while a partition window is
	// open, messages matching (From → To) are dropped. From/To of -1 match
	// every place. Windows are relative to Activate time.
	Partitions []Partition
	// OnInject, when non-nil, observes every injected fault. It is called
	// from transport goroutines and must not block.
	OnInject func(InjectEvent)

	startOnce sync.Once
	start     time.Time

	dropped     atomic.Int64
	duplicated  atomic.Int64
	delayed     atomic.Int64
	partitioned atomic.Int64
}

// Partition blocks the directed link From → To during [Start, End) of run
// time. Asymmetric partitions (A can reach B, B cannot reach A) are built
// from single directed entries.
type Partition struct {
	From  int // sending place, -1 for any
	To    int // receiving place, -1 for any
	Start time.Duration
	End   time.Duration
}

// InjectEvent describes one injected fault.
type InjectEvent struct {
	From  int
	To    int
	Kind  uint8
	Fault string // "drop", "drop-reply", "dup", "delay", "partition"
	Delay time.Duration
}

// InjectStats is a point-in-time count of injected faults across all
// endpoints sharing the plan.
type InjectStats struct {
	Dropped     int64
	Duplicated  int64
	Delayed     int64
	Partitioned int64
}

func (s InjectStats) Total() int64 {
	return s.Dropped + s.Duplicated + s.Delayed + s.Partitioned
}

func (s InjectStats) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d delayed=%d partitioned=%d",
		s.Dropped, s.Duplicated, s.Delayed, s.Partitioned)
}

// Activate pins the plan's clock; partition windows are relative to it.
// The first wrapped endpoint to carry traffic activates the plan lazily,
// but a run harness can call it explicitly at start for tighter windows.
func (p *FaultPlan) Activate() {
	p.startOnce.Do(func() { p.start = time.Now() })
}

// Stats returns the injected-fault counters.
func (p *FaultPlan) Stats() InjectStats {
	return InjectStats{
		Dropped:     p.dropped.Load(),
		Duplicated:  p.duplicated.Load(),
		Delayed:     p.delayed.Load(),
		Partitioned: p.partitioned.Load(),
	}
}

func (p *FaultPlan) emit(ev InjectEvent) {
	if p.OnInject != nil {
		p.OnInject(ev)
	}
}

func (p *FaultPlan) inPartition(from, to int) bool {
	if len(p.Partitions) == 0 {
		return false
	}
	p.Activate()
	now := time.Since(p.start)
	for _, w := range p.Partitions {
		if (w.From == -1 || w.From == from) && (w.To == -1 || w.To == to) &&
			now >= w.Start && now < w.End {
			return true
		}
	}
	return false
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash used to
// derive per-message fault decisions from the plan seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// roll derives the decision word for the n-th message from `from` to `to`
// of the given kind. The stream index keeps independent decisions (drop,
// dup, delay, delay length) uncorrelated.
func (p *FaultPlan) roll(from, to int, kind uint8, n uint64, stream uint64) uint64 {
	x := uint64(p.Seed)
	x ^= uint64(from)<<48 | uint64(to)<<32 | uint64(kind)<<24 | stream<<16
	x ^= n * 0x9e3779b97f4a7c15
	return mix64(x)
}

// FaultFabric wraps one place's Transport endpoint with the plan's fault
// injection, composable over both LocalFabric endpoints and TCP. Faults are
// injected on the sending side — drop, duplication, delay and partition all
// manifest before the inner transport sees the message — so the same
// wrapper hardens single-process and multi-process deployments alike.
type FaultFabric struct {
	inner Transport
	plan  *FaultPlan

	seq []atomic.Uint64 // per-destination message counter

	closed    chan struct{}
	closeOnce sync.Once
	closeMu   sync.RWMutex   // serializes track() against Close's Wait
	wg        sync.WaitGroup // delayed sends and async duplicates
}

// track registers one async delivery goroutine with the fabric, unless it
// is closing. wg.Add must not race Close's Wait (a documented WaitGroup
// misuse); the read lock orders every Add before the close, so Wait sees a
// settled counter.
func (f *FaultFabric) track() bool {
	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	select {
	case <-f.closed:
		return false
	default:
	}
	f.wg.Add(1)
	return true
}

var _ Transport = (*FaultFabric)(nil)

// NewFaultFabric wraps inner with plan. Wrapping with a nil plan returns a
// transparent pass-through (still a *FaultFabric, never injecting).
func NewFaultFabric(inner Transport, plan *FaultPlan) *FaultFabric {
	return &FaultFabric{
		inner:  inner,
		plan:   plan,
		seq:    make([]atomic.Uint64, inner.NPlaces()),
		closed: make(chan struct{}),
	}
}

func (f *FaultFabric) Self() int                    { return f.inner.Self() }
func (f *FaultFabric) NPlaces() int                 { return f.inner.NPlaces() }
func (f *FaultFabric) Stats() *Stats                { return f.inner.Stats() }
func (f *FaultFabric) Alive(p int) bool             { return f.inner.Alive(p) }
func (f *FaultFabric) Handle(kind uint8, h Handler) { f.inner.Handle(kind, h) }

// MarkDead forwards a failure-detector verdict to the inner transport.
func (f *FaultFabric) MarkDead(p int) {
	if md, ok := f.inner.(interface{ MarkDead(int) }); ok {
		md.MarkDead(p)
	}
}

// Close stops the injection machinery (releasing delayed deliveries and
// waiting out async duplicates). It does not close the inner transport —
// the fabric that created the endpoint owns that.
func (f *FaultFabric) Close() error {
	f.closeOnce.Do(func() {
		f.closeMu.Lock()
		close(f.closed)
		f.closeMu.Unlock()
	})
	f.wg.Wait()
	return nil
}

// decision is the injection verdict for one outbound message.
type decision struct {
	partition bool
	drop      bool // Send: lose it; Call: lose the request leg
	dropReply bool // Call only: deliver, then lose the reply leg
	dup       bool
	delay     time.Duration
}

func (f *FaultFabric) decide(to int, kind uint8, isCall bool) decision {
	var d decision
	p := f.plan
	if p == nil {
		return d
	}
	from := f.inner.Self()
	if p.inPartition(from, to) {
		p.partitioned.Add(1)
		p.emit(InjectEvent{From: from, To: to, Kind: kind, Fault: "partition"})
		d.partition = true
		return d
	}
	n := f.seq[to].Add(1)
	if p.Drop > 0 {
		r := unit(p.roll(from, to, kind, n, 1))
		if r < p.Drop {
			p.dropped.Add(1)
			// Calls lose the request or the reply leg, half each; one-way
			// messages simply vanish.
			if isCall && r >= p.Drop/2 {
				d.dropReply = true
				p.emit(InjectEvent{From: from, To: to, Kind: kind, Fault: "drop-reply"})
			} else {
				d.drop = true
				p.emit(InjectEvent{From: from, To: to, Kind: kind, Fault: "drop"})
			}
			return d
		}
	}
	if p.Dup > 0 && unit(p.roll(from, to, kind, n, 2)) < p.Dup {
		d.dup = true
		p.duplicated.Add(1)
		p.emit(InjectEvent{From: from, To: to, Kind: kind, Fault: "dup"})
	}
	if p.Delay > 0 && unit(p.roll(from, to, kind, n, 3)) < p.Delay {
		span := p.DelayMax - p.DelayMin
		d.delay = p.DelayMin
		if span > 0 {
			d.delay += time.Duration(unit(p.roll(from, to, kind, n, 4)) * float64(span))
		}
		if d.delay > 0 {
			p.delayed.Add(1)
			p.emit(InjectEvent{From: from, To: to, Kind: kind, Fault: "delay", Delay: d.delay})
		}
	}
	return d
}

// sleep holds the calling goroutine for d unless the wrapper closes first.
func (f *FaultFabric) sleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-f.closed:
		return ErrClosed
	}
}

// Send injects on the one-way path: dropped and partitioned messages vanish
// silently (the wire gives no feedback for datagram loss), delayed ones are
// handed to the inner transport later — from a goroutine, so they reorder
// against subsequent traffic — and duplicates are sent twice.
func (f *FaultFabric) Send(to int, kind uint8, payload []byte) error {
	if !f.inner.Alive(to) {
		// A failure-detector verdict is local knowledge: once the place is
		// marked dead, senders fail fast on the inner transport's ErrDeadPlace
		// instead of having the injection layer mask it as transient loss.
		return f.inner.Send(to, kind, payload)
	}
	d := f.decide(to, kind, false)
	if d.partition || d.drop {
		return nil // silent loss; Stats still count the attempt as injected
	}
	if d.delay > 0 {
		if !f.track() {
			return ErrClosed
		}
		buf := append([]byte(nil), payload...)
		go func() {
			defer f.wg.Done()
			if f.sleep(d.delay) != nil {
				return
			}
			f.inner.Send(to, kind, buf) //nolint:errcheck // delayed one-way: no error path
			if d.dup {
				f.inner.Send(to, kind, buf) //nolint:errcheck
			}
		}()
		return nil
	}
	if err := f.inner.Send(to, kind, payload); err != nil {
		return err
	}
	if d.dup {
		return f.inner.Send(to, kind, payload)
	}
	return nil
}

// Call injects on the request/response path. Lost request or reply legs
// surface as ErrUnreachable (the caller cannot tell which leg died — nor
// whether the handler ran, which is why delivery must be idempotent).
// Duplicated requests execute the remote handler a second time from a
// separate goroutine, racing the original.
func (f *FaultFabric) Call(to int, kind uint8, payload []byte) ([]byte, error) {
	if !f.inner.Alive(to) {
		return f.inner.Call(to, kind, payload) // dead verdict outranks injection
	}
	d := f.decide(to, kind, true)
	if d.partition || d.drop {
		return nil, ErrUnreachable
	}
	if d.delay > 0 {
		if err := f.sleep(d.delay); err != nil {
			return nil, err
		}
	}
	if d.dup && f.track() {
		buf := append([]byte(nil), payload...)
		go func() {
			defer f.wg.Done()
			f.inner.Call(to, kind, buf) //nolint:errcheck // replayed request: result discarded
		}()
	}
	reply, err := f.inner.Call(to, kind, payload)
	if err != nil {
		return nil, err
	}
	if d.dropReply {
		return nil, ErrUnreachable
	}
	return reply, nil
}
