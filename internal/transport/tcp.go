package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Wire format, little-endian:
//
//	kind   uint8   message kind (application-defined)
//	flags  uint8   bit0: response frame
//	from   uint32  sender place id
//	seq    uint64  request sequence number (echoed in the response)
//	length uint32  payload length
//	crc    uint32  IEEE CRC-32 of the payload
//	payload [length]byte
//
// Response frames carry kind=0 and, when bit1 of flags is set, the payload
// is an error string instead of reply data. The checksum guards against
// framing bugs and partial writes — a corrupted frame kills the
// connection rather than delivering garbage to a handler.
const (
	frameHeaderLen = 1 + 1 + 4 + 8 + 4 + 4

	flagResponse = 1 << 0
	flagError    = 1 << 1
)

// maxFrameLen bounds a single payload; larger frames indicate corruption.
const maxFrameLen = 1 << 28 // 256 MiB

// TCP is a Transport where each place is reachable at a TCP address,
// matching the deployment model of X10's Socket runtime (one process per
// place). Connections are dialed lazily and kept open; a connection error
// marks the peer dead and surfaces ErrDeadPlace to the engine.
type TCP struct {
	self  int
	addrs []string
	ln    net.Listener
	stats Stats

	hmu      sync.RWMutex
	handlers [256]Handler

	cmu      sync.Mutex
	conns    []*tcpConn      // indexed by peer place
	dialing  []chan struct{} // per-peer in-flight dial gate; closed when the dial settles
	accepted map[net.Conn]struct{}

	dead      []atomic.Bool
	connected []atomic.Bool // peer reached at least once

	seq     atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]chan tcpReply

	closed    chan struct{}
	closeOnce sync.Once

	dialTimeout time.Duration
}

type tcpReply struct {
	payload []byte
	err     error
}

type tcpConn struct {
	mu sync.Mutex // serializes writes
	c  net.Conn
}

var _ Transport = (*TCP)(nil)

// NewTCP creates the endpoint for place self, listening on addrs[self].
// All places must share the same addrs slice (place id -> address).
func NewTCP(self int, addrs []string) (*TCP, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("transport: place %d out of range (%d places)", self, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	t := &TCP{
		self:        self,
		addrs:       addrs,
		ln:          ln,
		conns:       make([]*tcpConn, len(addrs)),
		dialing:     make([]chan struct{}, len(addrs)),
		accepted:    make(map[net.Conn]struct{}),
		dead:        make([]atomic.Bool, len(addrs)),
		connected:   make([]atomic.Bool, len(addrs)),
		pending:     make(map[uint64]chan tcpReply),
		closed:      make(chan struct{}),
		dialTimeout: 10 * time.Second,
	}
	go t.accept()
	return t, nil
}

// Addr returns the address this endpoint actually listens on, useful when
// addrs[self] used port 0.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetAddrs replaces the peer address table. It must be called before any
// traffic is sent; tests use it to bind every endpoint to port 0 first and
// then distribute the real addresses.
func (t *TCP) SetAddrs(addrs []string) error {
	if len(addrs) != len(t.addrs) {
		return fmt.Errorf("transport: address table has %d entries, need %d", len(addrs), len(t.addrs))
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	for _, tc := range t.conns {
		if tc != nil {
			return fmt.Errorf("transport: cannot replace address table after connecting")
		}
	}
	copy(t.addrs, addrs)
	return nil
}

func (t *TCP) Self() int     { return t.self }
func (t *TCP) NPlaces() int  { return len(t.addrs) }
func (t *TCP) Stats() *Stats { return &t.stats }

func (t *TCP) Handle(kind uint8, h Handler) {
	t.hmu.Lock()
	t.handlers[kind] = h
	t.hmu.Unlock()
}

func (t *TCP) handler(kind uint8) Handler {
	t.hmu.RLock()
	h := t.handlers[kind]
	t.hmu.RUnlock()
	return h
}

func (t *TCP) Alive(p int) bool {
	return p >= 0 && p < len(t.addrs) && !t.dead[p].Load()
}

// MarkDead records that peer p has failed without waiting for a connection
// error; used when failure is learned out of band (e.g. a control message).
func (t *TCP) MarkDead(p int) {
	if p >= 0 && p < len(t.dead) {
		t.dead[p].Store(true)
	}
}

func (t *TCP) accept() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			return
		}
		t.cmu.Lock()
		t.accepted[c] = struct{}{}
		t.cmu.Unlock()
		go t.readLoop(c, -1)
	}
}

// conn returns an established connection to peer p, dialing if needed.
// Until a peer has been reached once, dial failures are retried within the
// startup grace window (the peer's process may simply not be listening
// yet); after first contact, a failed re-dial means the peer died.
// The dial itself runs with cmu released: holding the connection table
// lock across a retry loop of up to dialTimeout would stall traffic to
// every other (healthy) peer and block Close for the duration — the exact
// hazard dpx10-vet's lockheld analyzer exists to catch. A per-peer gate
// channel serializes dials to the same peer instead.
func (t *TCP) conn(p int) (*tcpConn, error) {
	var gate chan struct{}
	for {
		if !t.Alive(p) {
			return nil, ErrDeadPlace
		}
		t.cmu.Lock()
		if tc := t.conns[p]; tc != nil {
			t.cmu.Unlock()
			return tc, nil
		}
		if other := t.dialing[p]; other != nil {
			t.cmu.Unlock()
			select {
			case <-other: // that dial settled; re-check the table
			case <-t.closed:
				return nil, ErrClosed
			}
			continue
		}
		gate = make(chan struct{})
		t.dialing[p] = gate
		t.cmu.Unlock()
		break
	}

	c, err := t.dial(p) // no locks held

	t.cmu.Lock()
	t.dialing[p] = nil
	var tc *tcpConn
	if err == nil {
		select {
		case <-t.closed:
			// Close ran while we were dialing; don't resurrect the table.
			c.Close()
			err = ErrClosed
		default:
			tc = &tcpConn{c: c}
			t.conns[p] = tc
			go t.readLoop(c, p)
		}
	}
	t.cmu.Unlock()
	close(gate)
	if err != nil {
		return nil, err
	}
	return tc, nil
}

// dial establishes a raw connection to peer p. Until a peer has been
// reached once, failures are retried within the startup grace window (the
// peer's process may simply not be listening yet); after first contact, a
// failed re-dial means the peer died.
func (t *TCP) dial(p int) (net.Conn, error) {
	deadline := time.Now().Add(t.dialTimeout)
	for {
		c, err := net.DialTimeout("tcp", t.addrs[p], 500*time.Millisecond)
		if err == nil {
			t.connected[p].Store(true)
			return c, nil
		}
		if t.connected[p].Load() || time.Now().After(deadline) {
			t.dead[p].Store(true)
			return nil, ErrDeadPlace
		}
		select {
		case <-t.closed:
			return nil, ErrClosed
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (t *TCP) dropConn(p int) {
	t.cmu.Lock()
	if tc := t.conns[p]; tc != nil {
		tc.c.Close()
		t.conns[p] = nil
	}
	t.cmu.Unlock()
	t.dead[p].Store(true)
}

func writeFrame(w io.Writer, kind, flags uint8, from int, seq uint64, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	hdr[1] = flags
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(from))
	binary.LittleEndian.PutUint64(hdr[6:14], seq)
	binary.LittleEndian.PutUint32(hdr[14:18], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[18:22], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (kind, flags uint8, from int, seq uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	kind = hdr[0]
	flags = hdr[1]
	from = int(binary.LittleEndian.Uint32(hdr[2:6]))
	seq = binary.LittleEndian.Uint64(hdr[6:14])
	n := binary.LittleEndian.Uint32(hdr[14:18])
	sum := binary.LittleEndian.Uint32(hdr[18:22])
	if n > maxFrameLen {
		err = fmt.Errorf("transport: frame too large (%d bytes)", n)
		return
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return
		}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		err = fmt.Errorf("transport: frame checksum mismatch (kind %d, %d bytes)", kind, n)
	}
	return
}

func (t *TCP) send(p int, kind, flags uint8, seq uint64, payload []byte) error {
	tc, err := t.conn(p)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	err = writeFrame(tc.c, kind, flags, t.self, seq, payload)
	tc.mu.Unlock()
	if err != nil {
		t.dropConn(p)
		return ErrDeadPlace
	}
	return nil
}

// Send delivers a one-way message.
func (t *TCP) Send(to int, kind uint8, payload []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if err := t.send(to, kind, 0, 0, payload); err != nil {
		return err
	}
	t.stats.SendsOut.Add(1)
	t.stats.BytesOut.Add(int64(len(payload)))
	return nil
}

// Call sends a request and blocks until the matching response arrives or
// the peer fails.
func (t *TCP) Call(to int, kind uint8, payload []byte) ([]byte, error) {
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	seq := t.seq.Add(1)
	ch := make(chan tcpReply, 1)
	t.pmu.Lock()
	t.pending[seq] = ch
	t.pmu.Unlock()
	defer func() {
		t.pmu.Lock()
		delete(t.pending, seq)
		t.pmu.Unlock()
	}()

	if err := t.send(to, kind, 0|flagRequestMarker, seq, payload); err != nil {
		return nil, err
	}
	t.stats.CallsOut.Add(1)
	t.stats.BytesOut.Add(int64(len(payload)))

	// Poll for peer death so a request to a crashing place cannot hang.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case r := <-ch:
			if r.err != nil {
				return nil, r.err
			}
			t.stats.RepliesIn.Add(1)
			return r.payload, nil
		case <-tick.C:
			if !t.Alive(to) {
				return nil, ErrDeadPlace
			}
		case <-t.closed:
			return nil, ErrClosed
		}
	}
}

// flagRequestMarker distinguishes Call requests (which need a response)
// from Send traffic on the wire.
const flagRequestMarker = 1 << 2

// readLoop drains one connection. peer is the place at the other end when
// known at dial time (-1 for accepted connections, learned from frames).
//
// Places are fail-stop (the paper's model, like X10's socket runtime), so
// an established connection breaking means the peer died — unless this
// endpoint is itself shutting down. Marking the peer dead here is what
// unblocks Calls already waiting on a reply from it: nothing else would
// ever fail them if no new message happens to target that peer.
func (t *TCP) readLoop(c net.Conn, peer int) {
	defer func() {
		c.Close()
		t.cmu.Lock()
		delete(t.accepted, c)
		if peer >= 0 {
			if tc := t.conns[peer]; tc != nil && tc.c == c {
				t.conns[peer] = nil
			}
		}
		t.cmu.Unlock()
		select {
		case <-t.closed: // our own shutdown, not the peer's death
		default:
			if peer >= 0 {
				t.dead[peer].Store(true)
			}
		}
	}()
	for {
		kind, flags, from, seq, payload, err := readFrame(c)
		if err != nil {
			return
		}
		if peer < 0 {
			peer = from
		}
		switch {
		case flags&flagResponse != 0:
			t.pmu.Lock()
			ch := t.pending[seq]
			t.pmu.Unlock()
			if ch != nil {
				r := tcpReply{payload: payload}
				if flags&flagError != 0 {
					r.payload = nil
					r.err = decodeWireError(payload)
				}
				select {
				case ch <- r:
				default:
				}
			}
		case flags&flagRequestMarker != 0:
			t.stats.MsgsIn.Add(1)
			t.stats.BytesIn.Add(int64(len(payload)))
			go t.serve(from, kind, seq, payload)
		default:
			t.stats.MsgsIn.Add(1)
			t.stats.BytesIn.Add(int64(len(payload)))
			if h := t.handler(kind); h != nil {
				go h(from, payload)
			}
		}
	}
}

func (t *TCP) serve(from int, kind uint8, seq uint64, payload []byte) {
	h := t.handler(kind)
	var reply []byte
	var err error
	if h == nil {
		err = ErrNoHandler
	} else {
		reply, err = h(from, payload)
	}
	flags := uint8(flagResponse)
	if err != nil {
		flags |= flagError
		reply = encodeWireError(err)
	}
	t.send(from, 0, flags, seq, reply) //nolint:errcheck // peer gone: nothing to do
}

// Wire errors preserve ErrDeadPlace identity across the connection so the
// engine's recovery trigger works in multi-process mode too.
func encodeWireError(err error) []byte {
	if err == ErrDeadPlace {
		return []byte("\x01" + err.Error())
	}
	return []byte("\x00" + err.Error())
}

func decodeWireError(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("transport: remote error")
	}
	if b[0] == 1 {
		return ErrDeadPlace
	}
	return fmt.Errorf("transport: remote error: %s", b[1:])
}

// Close shuts the endpoint down and drops all connections.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.cmu.Lock()
		for i, tc := range t.conns {
			if tc != nil {
				tc.c.Close()
				t.conns[i] = nil
			}
		}
		for c := range t.accepted {
			c.Close()
		}
		t.accepted = make(map[net.Conn]struct{})
		t.cmu.Unlock()
	})
	return nil
}
