package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP is a Transport where each place is reachable at a TCP address,
// matching the deployment model of X10's Socket runtime (one process per
// place). Connections are dialed lazily and kept open; a connection error
// marks the peer dead and surfaces ErrDeadPlace to the engine.
//
// The data plane is pipelined (see pipeline.go): each connection has a
// single writer goroutine that packs queued frames into vectored writes,
// and the read side parses frames out of pooled, reference-counted
// buffers that handlers borrow. See wire.go for the frame dialects.
type TCP struct {
	self  int
	addrs []string
	ln    net.Listener
	stats Stats
	opts  TCPOptions
	obs   PipeObserver

	hmu      sync.RWMutex
	handlers [256]Handler

	cmu      sync.Mutex
	conns    []*tcpConn      // indexed by peer place
	dialing  []chan struct{} // per-peer in-flight dial gate; closed when the dial settles
	accepted map[net.Conn]struct{}

	dead      []atomic.Bool
	connected []atomic.Bool // peer reached at least once

	// contact[p] closes the first time any traffic arrives from p (or we
	// reach p ourselves): the broadcast that wakes dial retry loops the
	// moment the peer is known to be up, instead of leaving them to their
	// timed fallback poll.
	contact   []chan struct{}
	contacted []atomic.Bool

	seq     atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]chan tcpReply

	closed    chan struct{}
	closeOnce sync.Once

	dialTimeout time.Duration
}

type tcpReply struct {
	payload []byte
	err     error
}

var _ Transport = (*TCP)(nil)

// NewTCP creates the endpoint for place self, listening on addrs[self],
// with the default pipelined data plane. All places must share the same
// addrs slice (place id -> address).
func NewTCP(self int, addrs []string) (*TCP, error) {
	return NewTCPOpts(self, addrs, TCPOptions{})
}

// NewTCPOpts is NewTCP with explicit data-plane options.
func NewTCPOpts(self int, addrs []string, opts TCPOptions) (*TCP, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("transport: place %d out of range (%d places)", self, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	opts.normalize()
	t := &TCP{
		self: self,
		// Copied, not aliased: callers (and in-process tests) share one
		// table across every endpoint, and SetAddrs on one endpoint must
		// not mutate storage another endpoint's dial loop is reading.
		addrs:       append([]string(nil), addrs...),
		ln:          ln,
		opts:        opts,
		conns:       make([]*tcpConn, len(addrs)),
		dialing:     make([]chan struct{}, len(addrs)),
		accepted:    make(map[net.Conn]struct{}),
		dead:        make([]atomic.Bool, len(addrs)),
		connected:   make([]atomic.Bool, len(addrs)),
		contact:     make([]chan struct{}, len(addrs)),
		contacted:   make([]atomic.Bool, len(addrs)),
		pending:     make(map[uint64]chan tcpReply),
		closed:      make(chan struct{}),
		dialTimeout: 10 * time.Second,
	}
	for p := range t.contact {
		t.contact[p] = make(chan struct{})
	}
	go t.accept()
	return t, nil
}

// Addr returns the address this endpoint actually listens on, useful when
// addrs[self] used port 0.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetAddrs replaces the peer address table. It must be called before any
// traffic is sent; tests use it to bind every endpoint to port 0 first and
// then distribute the real addresses.
func (t *TCP) SetAddrs(addrs []string) error {
	if len(addrs) != len(t.addrs) {
		return fmt.Errorf("transport: address table has %d entries, need %d", len(addrs), len(t.addrs))
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	for _, tc := range t.conns {
		if tc != nil {
			return fmt.Errorf("transport: cannot replace address table after connecting")
		}
	}
	copy(t.addrs, addrs)
	return nil
}

// SetPipeObserver installs the data-plane event observer. It must be set
// before any traffic flows.
func (t *TCP) SetPipeObserver(o PipeObserver) { t.obs = o }

func (t *TCP) Self() int     { return t.self }
func (t *TCP) NPlaces() int  { return len(t.addrs) }
func (t *TCP) Stats() *Stats { return &t.stats }

func (t *TCP) Handle(kind uint8, h Handler) {
	t.hmu.Lock()
	t.handlers[kind] = h
	t.hmu.Unlock()
}

func (t *TCP) handler(kind uint8) Handler {
	t.hmu.RLock()
	h := t.handlers[kind]
	t.hmu.RUnlock()
	return h
}

func (t *TCP) Alive(p int) bool {
	return p >= 0 && p < len(t.addrs) && !t.dead[p].Load()
}

// MarkDead records that peer p has failed without waiting for a connection
// error; used when failure is learned out of band (e.g. a control message).
func (t *TCP) MarkDead(p int) {
	if p >= 0 && p < len(t.dead) {
		t.dead[p].Store(true)
	}
}

// noteContact records that peer p is demonstrably up (traffic arrived from
// it, or we reached it), broadcasting to any dial loop waiting on it.
func (t *TCP) noteContact(p int) {
	if p < 0 || p >= len(t.contacted) || t.contacted[p].Load() {
		return
	}
	if t.contacted[p].CompareAndSwap(false, true) {
		close(t.contact[p])
	}
}

func (t *TCP) accept() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			return
		}
		t.cmu.Lock()
		t.accepted[c] = struct{}{}
		t.cmu.Unlock()
		go t.readLoop(c, -1)
	}
}

// conn returns an established connection to peer p, dialing if needed.
// The dial itself runs with cmu released: holding the connection table
// lock across a retry loop of up to dialTimeout would stall traffic to
// every other (healthy) peer and block Close for the duration — the exact
// hazard dpx10-vet's lockheld analyzer exists to catch. A per-peer gate
// channel serializes dials to the same peer instead.
func (t *TCP) conn(p int) (*tcpConn, error) {
	var gate chan struct{}
	for {
		if !t.Alive(p) {
			return nil, ErrDeadPlace
		}
		t.cmu.Lock()
		if tc := t.conns[p]; tc != nil {
			t.cmu.Unlock()
			return tc, nil
		}
		if other := t.dialing[p]; other != nil {
			t.cmu.Unlock()
			select {
			case <-other: // that dial settled; re-check the table
			case <-t.closed:
				return nil, ErrClosed
			}
			continue
		}
		gate = make(chan struct{})
		t.dialing[p] = gate
		t.cmu.Unlock()
		break
	}

	c, err := t.dial(p) // no locks held

	t.cmu.Lock()
	t.dialing[p] = nil
	var tc *tcpConn
	if err == nil {
		select {
		case <-t.closed:
			// Close ran while we were dialing; don't resurrect the table.
			c.Close()
			err = ErrClosed
		default:
			tc = newTCPConn(c, &t.opts)
			t.conns[p] = tc
			if !t.opts.NoPipeline {
				go t.writeLoop(tc)
			}
			go t.readLoop(c, p)
		}
	}
	t.cmu.Unlock()
	close(gate)
	if err != nil {
		return nil, err
	}
	return tc, nil
}

// dial establishes a raw connection to peer p. Until a peer has been
// reached once, failures are retried within the startup grace window (the
// peer's process may simply not be listening yet); after first contact, a
// failed re-dial means the peer died. Retries wake on the peer's contact
// broadcast — the instant its first frame reaches us we know its process
// is up — with a timed poll only as fallback.
func (t *TCP) dial(p int) (net.Conn, error) {
	deadline := time.Now().Add(t.dialTimeout)
	wake := t.contact[p]
	for {
		// Snapshot the peer address under cmu: a worker installs the real
		// table via SetAddrs concurrently with early dial attempts, and the
		// string header read must not race that copy. Re-read every retry so
		// a table installed mid-grace-window takes effect.
		t.cmu.Lock()
		addr := t.addrs[p]
		t.cmu.Unlock()
		c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			t.connected[p].Store(true)
			t.noteContact(p)
			return c, nil
		}
		if t.connected[p].Load() || time.Now().After(deadline) {
			t.dead[p].Store(true)
			return nil, ErrDeadPlace
		}
		select {
		case <-t.closed:
			return nil, ErrClosed
		case <-wake:
			// The peer spoke to us: retry immediately, then fall back to
			// the timed poll (the broadcast only fires once).
			wake = nil
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (t *TCP) dropConn(p int) {
	t.cmu.Lock()
	tc := t.conns[p]
	if tc != nil {
		t.conns[p] = nil
	}
	t.cmu.Unlock()
	if tc != nil {
		tc.shutdown(ErrDeadPlace)
		tc.c.Close()
	}
	t.dead[p].Store(true)
}

// send delivers one frame to peer p through its pipeline (or directly in
// NoPipeline mode) and returns once the frame is on the wire — the
// payload buffer is the caller's again when send returns.
func (t *TCP) send(p int, kind, flags uint8, seq uint64, payload []byte) error {
	tc, err := t.conn(p)
	if err != nil {
		return err
	}
	if t.opts.NoPipeline {
		tc.mu.Lock()
		err = writeFrame(tc.c, kind, flags, t.self, seq, payload)
		tc.mu.Unlock()
		if err == nil {
			writes := int64(1)
			if len(payload) > 0 {
				writes = 2
			}
			t.stats.WriteCalls.Add(writes)
			t.stats.FramesOut.Add(1)
			t.stats.WireBytesOut.Add(int64(frameHeaderLen + len(payload)))
		}
	} else {
		err = tc.enqueue(kind, flags, seq, payload)
	}
	if err != nil {
		select {
		case <-t.closed:
			return ErrClosed
		default:
		}
		t.dropConn(p)
		return ErrDeadPlace
	}
	return nil
}

// Send delivers a one-way message.
func (t *TCP) Send(to int, kind uint8, payload []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if err := t.send(to, kind, 0, 0, payload); err != nil {
		return err
	}
	t.stats.SendsOut.Add(1)
	t.stats.BytesOut.Add(int64(len(payload)))
	return nil
}

// Call sends a request and blocks until the matching response arrives or
// the peer fails.
func (t *TCP) Call(to int, kind uint8, payload []byte) ([]byte, error) {
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	seq := t.seq.Add(1)
	ch := make(chan tcpReply, 1)
	t.pmu.Lock()
	t.pending[seq] = ch
	t.pmu.Unlock()
	defer func() {
		t.pmu.Lock()
		delete(t.pending, seq)
		t.pmu.Unlock()
	}()

	if err := t.send(to, kind, 0|flagRequestMarker, seq, payload); err != nil {
		return nil, err
	}
	t.stats.CallsOut.Add(1)
	t.stats.BytesOut.Add(int64(len(payload)))

	// Poll for peer death so a request to a crashing place cannot hang.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case r := <-ch:
			if r.err != nil {
				return nil, r.err
			}
			t.stats.RepliesIn.Add(1)
			return r.payload, nil
		case <-tick.C:
			if !t.Alive(to) {
				return nil, ErrDeadPlace
			}
		case <-t.closed:
			return nil, ErrClosed
		}
	}
}

// readLoop drains one connection. peer is the place at the other end when
// known at dial time (-1 for accepted connections, learned from frames).
//
// Frames are read through a buffered reader into pooled recvBufs; handler
// goroutines borrow sub-slices under the recvBuf's refcount, and response
// payloads are copied out (Call callers retain them). A malformed frame —
// bad CRC, bad batch structure, unknown preamble features — kills the
// connection rather than risking misframed traffic.
//
// Places are fail-stop (the paper's model, like X10's socket runtime), so
// an established connection breaking means the peer died — unless this
// endpoint is itself shutting down. Marking the peer dead here is what
// unblocks Calls already waiting on a reply from it: nothing else would
// ever fail them if no new message happens to target that peer.
func (t *TCP) readLoop(c net.Conn, peer int) {
	defer func() {
		c.Close()
		t.cmu.Lock()
		delete(t.accepted, c)
		var tc *tcpConn
		if peer >= 0 {
			if cur := t.conns[peer]; cur != nil && cur.c == c {
				tc = cur
				t.conns[peer] = nil
			}
		}
		t.cmu.Unlock()
		if tc != nil {
			tc.shutdown(ErrDeadPlace) // stop the writer; fail parked senders
		}
		select {
		case <-t.closed: // our own shutdown, not the peer's death
		default:
			if peer >= 0 {
				t.dead[peer].Store(true)
			}
		}
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var inf io.ReadCloser // lazily created flate reader, reused across frames
	var infSrc bytes.Reader
	for {
		var hdr [frameHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		kind := hdr[0]
		flags := hdr[1]
		from := int(binary.LittleEndian.Uint32(hdr[2:6]))
		seq := binary.LittleEndian.Uint64(hdr[6:14])
		n := binary.LittleEndian.Uint32(hdr[14:18])
		sum := binary.LittleEndian.Uint32(hdr[18:22])
		if n > maxFrameLen {
			return
		}
		if peer < 0 {
			peer = from
		}
		t.noteContact(from)
		if flags&flagControl != 0 {
			// Connection preamble: the writer declares the frame forms it
			// will use. Unknown features mean a peer from the future —
			// dying here beats misparsing its traffic.
			if seq&^uint64(featAll) != 0 {
				return
			}
			if n > 0 {
				if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
					return
				}
			}
			continue
		}
		rb := getRecvBuf(int(n))
		buf := rb.b[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			rb.release()
			return
		}
		if crc32.ChecksumIEEE(buf) != sum {
			rb.release()
			return
		}
		ok := true
		if flags&flagBatch != 0 {
			ok = kind == 0 && t.dispatchBatch(rb, from, seq, buf, &inf, &infSrc)
		} else {
			ok = t.dispatch(rb, from, kind, flags, seq, buf, &inf, &infSrc)
		}
		rb.release()
		if !ok {
			return
		}
	}
}

// dispatchBatch walks a batch envelope's sub-frames, dispatching each.
// The envelope CRC was already verified; structural damage (counts or
// lengths that do not add up) reports false and kills the connection.
func (t *TCP) dispatchBatch(rb *recvBuf, from int, count uint64, buf []byte, inf *io.ReadCloser, infSrc *bytes.Reader) bool {
	return walkBatch(buf, count, func(kind, flags uint8, seq uint64, payload []byte) bool {
		return t.dispatch(rb, from, kind, flags, seq, payload, inf, infSrc)
	})
}

// dispatch routes one frame: responses complete pending Calls (payload
// copied — the caller outlives the pooled buffer), requests and one-way
// messages run their handler on a borrowed reference to the buffer.
func (t *TCP) dispatch(rb *recvBuf, from int, kind, flags uint8, seq uint64, payload []byte, inf *io.ReadCloser, infSrc *bytes.Reader) bool {
	if flags&flagCompressed != 0 {
		dec, n, err := inflatePayload(inf, infSrc, payload)
		if err != nil {
			return false
		}
		ok := t.dispatch(dec, from, kind, flags&^flagCompressed, seq, dec.b[:n], inf, infSrc)
		dec.release()
		return ok
	}
	switch {
	case flags&flagResponse != 0:
		t.pmu.Lock()
		ch := t.pending[seq]
		t.pmu.Unlock()
		if ch != nil {
			var r tcpReply
			if flags&flagError != 0 {
				r.err = decodeWireError(payload)
			} else {
				r.payload = cloneBytes(payload)
			}
			select {
			case ch <- r:
			default:
			}
		}
	case flags&flagRequestMarker != 0:
		t.stats.MsgsIn.Add(1)
		t.stats.BytesIn.Add(int64(len(payload)))
		rb.retain()
		go func() {
			defer rb.release()
			t.serve(from, kind, seq, payload)
		}()
	default:
		t.stats.MsgsIn.Add(1)
		t.stats.BytesIn.Add(int64(len(payload)))
		if h := t.handler(kind); h != nil {
			rb.retain()
			go func() {
				defer rb.release()
				h(from, payload) //nolint:errcheck // one-way: no reply path
			}()
		}
	}
	return true
}

// inflatePayload decodes a compressed payload (`origLen u32 | DEFLATE`)
// into a fresh pooled buffer, reusing the loop's flate reader.
func inflatePayload(inf *io.ReadCloser, src *bytes.Reader, payload []byte) (*recvBuf, int, error) {
	if len(payload) < 4 {
		return nil, 0, fmt.Errorf("transport: compressed payload truncated")
	}
	orig := binary.LittleEndian.Uint32(payload[:4])
	if orig > maxFrameLen {
		return nil, 0, fmt.Errorf("transport: compressed payload too large (%d bytes)", orig)
	}
	src.Reset(payload[4:])
	if *inf == nil {
		*inf = flate.NewReader(src)
	} else if err := (*inf).(flate.Resetter).Reset(src, nil); err != nil {
		return nil, 0, err
	}
	rb := getRecvBuf(int(orig))
	if _, err := io.ReadFull(*inf, rb.b[:orig]); err != nil {
		rb.release()
		return nil, 0, err
	}
	return rb, int(orig), nil
}

func (t *TCP) serve(from int, kind uint8, seq uint64, payload []byte) {
	h := t.handler(kind)
	var reply []byte
	var err error
	if h == nil {
		err = ErrNoHandler
	} else {
		reply, err = h(from, payload)
	}
	flags := uint8(flagResponse)
	if err != nil {
		flags |= flagError
		reply = encodeWireError(err)
	}
	t.send(from, 0, flags, seq, reply) //nolint:errcheck // peer gone: nothing to do
}

// Close shuts the endpoint down and drops all connections.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.cmu.Lock()
		conns := make([]*tcpConn, 0, len(t.conns))
		for i, tc := range t.conns {
			if tc != nil {
				conns = append(conns, tc)
				t.conns[i] = nil
			}
		}
		for c := range t.accepted {
			c.Close()
		}
		t.accepted = make(map[net.Conn]struct{})
		t.cmu.Unlock()
		for _, tc := range conns {
			tc.shutdown(ErrClosed)
			tc.c.Close()
		}
	})
	return nil
}
