// Command dpx10-sim runs what-if studies on the discrete-event cluster
// simulator: pick a DAG pattern, a cluster shape and a cost model, and
// get the virtual-time makespan, traffic and (optionally) recovery cost —
// without owning a cluster, which is the point of the simulator substrate
// (see DESIGN.md §1).
//
// Examples:
//
//	dpx10-sim -pattern diagonal -h 240 -w 240 -nodes 2,4,6,8,10,12
//	dpx10-sim -pattern grid -h 200 -w 200 -nodes 8 -cache 64
//	dpx10-sim -pattern diagonal -h 240 -w 240 -nodes 8 -fault 0.5 -kill 7
//	dpx10-sim -pattern triangle -h 96 -w 96 -nodes 6 -steal
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dag/patterns"
	"github.com/dpx10/dpx10/internal/dist"
	"github.com/dpx10/dpx10/internal/simcluster"
)

func main() {
	patName := flag.String("pattern", "diagonal", "DAG pattern: "+strings.Join(patterns.Names(), " | "))
	h := flag.Int("h", 240, "matrix height (tiles)")
	w := flag.Int("w", 240, "matrix width (tiles)")
	nodeList := flag.String("nodes", "2,4,6,8,10,12", "comma-separated node counts (places = 2x nodes)")
	cores := flag.Int("cores", 6, "worker threads per place")
	computeUs := flag.Float64("compute-us", 1000, "per-vertex compute cost, microseconds")
	schedUs := flag.Float64("sched-us", 0, "per-vertex scheduling overhead, microseconds (amortized over -tile)")
	tile := flag.Int("tile", 1, "scheduling granularity in cells for the -sched-us amortization")
	latencyUs := flag.Float64("latency-us", 20, "per-message latency, microseconds")
	bandwidth := flag.Float64("bandwidth", 1e9, "link bandwidth, bytes/second")
	fetchBytes := flag.Int64("fetch-bytes", 864, "payload of one dependency transfer")
	cache := flag.Int("cache", 0, "per-place vertex cache entries")
	steal := flag.Bool("steal", false, "enable the work-stealing execution model")
	aggUs := flag.Float64("agg-us", 0, "decrement aggregation window, microseconds (0 = per-vertex messages)")
	push := flag.Bool("push", false, "piggyback finished values onto aggregated decrements (needs -agg-us and -cache)")
	faultAt := flag.Float64("fault", -1, "inject one fault at this progress fraction (0..1)")
	kill := flag.Int("kill", -1, "place to kill at -fault (default: last place)")
	restore := flag.Bool("restore-remote", false, "recovery copies moved results instead of recomputing")
	chaosDrop := flag.Float64("chaos-drop", 0, "chaos arm: per-message drop probability, modeled as expected retransmissions (0..1)")
	chaosDup := flag.Float64("chaos-dup", 0, "chaos arm: per-message duplication probability (bandwidth overhead)")
	chaosDelayUs := flag.Float64("chaos-delay-us", 0, "chaos arm: expected injected delay per message, microseconds")
	flag.Parse()

	if *chaosDrop < 0 || *chaosDrop >= 1 {
		if *chaosDrop != 0 {
			fail(fmt.Errorf("-chaos-drop must be in [0,1), got %v", *chaosDrop))
		}
	}

	obj, err := patterns.ByName(*patName, int32(*h), int32(*w))
	if err != nil {
		fail(err)
	}
	pat, ok := obj.(dag.Pattern)
	if !ok {
		fail(fmt.Errorf("pattern %q is not runnable", *patName))
	}
	prof := dag.Profile(pat)
	fmt.Printf("pattern %s %dx%d: %d active cells, %d edges, in-degree <= %d, %d sources, %d sinks\n\n",
		*patName, *h, *w, prof.ActiveCells, prof.Edges, prof.MaxInDeg, prof.Sources, prof.Sinks)

	fmt.Printf("%-6s %-7s %-6s %12s %10s %12s %12s %12s %10s\n",
		"nodes", "places", "cores", "makespan(s)", "speedup", "msgs", "bytes", "recovery(s)", "util")
	var base float64
	for _, tok := range strings.Split(*nodeList, ",") {
		nodes, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || nodes < 1 {
			fail(fmt.Errorf("bad node count %q", tok))
		}
		places := nodes * 2
		model := simcluster.Model{
			CoresPerPlace:    *cores,
			ComputeCost:      *computeUs * 1e-6,
			NetLatency:       *latencyUs * 1e-6,
			NetBandwidth:     *bandwidth,
			FetchBytes:       *fetchBytes,
			DecrBytes:        16,
			CacheSize:        *cache,
			RecoveryCellCost: *computeUs * 1e-6 / 5,
			SchedCost:        *schedUs * 1e-6,
			TileSize:         *tile,
			Steal:            *steal,
			AggWindow:        *aggUs * 1e-6,
			ValuePush:        *push,
			ChaosDropProb:    *chaosDrop,
			ChaosDupProb:     *chaosDup,
			ChaosDelayMean:   *chaosDelayUs * 1e-6,
		}
		sim, err := simcluster.New(pat, dist.NewBlockRow(int32(*h), int32(*w), places), model)
		if err != nil {
			fail(err)
		}
		if *faultAt >= 0 {
			sim.RunUntil(int64(float64(sim.Active()) * *faultAt))
			dead := *kill
			if dead < 0 {
				dead = places - 1
			}
			if _, err := sim.Fault(dead, *restore); err != nil {
				fail(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			fail(err)
		}
		if base == 0 {
			base = res.Makespan
		}
		minU, maxU := 1.0, 0.0
		for p := 0; p < places; p++ {
			u := sim.Utilization(p)
			if u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
		fmt.Printf("%-6d %-7d %-6d %12.3f %10.2f %12d %12d %12.3f %4.0f-%2.0f%%\n",
			nodes, places, places**cores, res.Makespan, base/res.Makespan,
			res.Messages, res.BytesMoved, res.RecoveryTime, 100*minU, 100*maxU)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dpx10-sim:", err)
	os.Exit(1)
}
