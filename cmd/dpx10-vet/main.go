// Command dpx10-vet runs the DPX10 static-analysis suite — the APGAS
// place-isolation, concurrency and wire-protocol invariants X10's
// compiler would have enforced for us — over the packages matching the
// given patterns.
//
// Usage:
//
//	dpx10-vet [-list] [-json | -sarif] [packages]
//
// With no patterns it analyzes ./... relative to the current directory.
// The preferred entry point is `make vet`, which builds and runs it over
// the whole module; scripts/tier1.sh runs the same check as part of the
// tier-1 gate under a wall-clock budget. `make vet-json` emits machine-
// readable findings; CI uploads `-sarif` output to GitHub code scanning.
// Exit status is 1 when any diagnostic is reported, 2 on load/usage
// errors (in -json/-sarif modes the document is still written on exit 1).
//
// Analyzers (severity in parentheses):
//
//	placeleak   (error)    handlers/decoders must not retain payload aliases
//	protokind   (error)    every kind* constant registered, named, fuzz-covered
//	wiresym     (error)    encoder and handler agree on every wire kind's shape
//	lockorder   (error)    whole-program lock acquisition order is acyclic
//	lockheld    (error)    no blocking ops on any path holding a sync.Mutex/RWMutex
//	atomicmix   (error)    no mixed atomic and plain access to the same variable
//	goroleak    (warning)  spawned goroutines must be tied to a shutdown signal
//	errdrop     (warning)  transport Send/Call errors must be consumed
//	metricname  (warning)  every metrics Registry lookup constant, registered, kind-matched
//	allowlint   (info)     //dpx10:allow suppressions name analyzers and a rationale
//
// Suppressions. A finding is silenced by a comment on the flagged line or
// the line directly above it:
//
//	//dpx10:allow <analyzer>[,<analyzer>] <rationale>
//
// e.g. `return p, nil //dpx10:allow placeleak test echo handler`. Both the
// analyzer name(s) and the rationale are mandatory: allowlint reports any
// bare or reasonless suppression, so an allow without a reason is itself
// a finding rather than a review convention.
package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/dpx10/dpx10/internal/analysis/allowlint"
	"github.com/dpx10/dpx10/internal/analysis/atomicmix"
	"github.com/dpx10/dpx10/internal/analysis/errdrop"
	"github.com/dpx10/dpx10/internal/analysis/framework"
	"github.com/dpx10/dpx10/internal/analysis/goroleak"
	"github.com/dpx10/dpx10/internal/analysis/lockheld"
	"github.com/dpx10/dpx10/internal/analysis/lockorder"
	"github.com/dpx10/dpx10/internal/analysis/metricname"
	"github.com/dpx10/dpx10/internal/analysis/placeleak"
	"github.com/dpx10/dpx10/internal/analysis/protokind"
	"github.com/dpx10/dpx10/internal/analysis/wiresym"
)

func analyzers() []*framework.Analyzer {
	as := []*framework.Analyzer{
		placeleak.Analyzer,
		protokind.Analyzer,
		wiresym.Analyzer,
		lockorder.Analyzer,
		lockheld.Analyzer,
		atomicmix.Analyzer,
		goroleak.Analyzer,
		errdrop.Analyzer,
		metricname.Analyzer,
	}
	// allowlint validates suppression comments against the registry, so it
	// must know every name above plus its own.
	names := make([]string, 0, len(as)+1)
	for _, a := range as {
		names = append(names, a.Name)
	}
	names = append(names, "allowlint")
	return append(as, allowlint.New(names))
}

func main() {
	as := analyzers()
	args := os.Args[1:]
	mode := "text"
	for len(args) > 0 {
		switch args[0] {
		case "-list":
			list(as)
			return
		case "-json":
			mode = "json"
		case "-sarif":
			mode = "sarif"
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: dpx10-vet [-list] [-json | -sarif] [packages]")
			return
		default:
			os.Exit(run(as, mode, args))
		}
		args = args[1:]
	}
	os.Exit(run(as, mode, nil))
}

func list(as []*framework.Analyzer) {
	lines := make([]string, 0, len(as))
	for _, a := range as {
		lines = append(lines, fmt.Sprintf("%-10s %-8s %s", a.Name, a.Severity, a.Doc))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func run(as []*framework.Analyzer, mode string, patterns []string) int {
	fset, pkgs, err := framework.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpx10-vet: %v\n", err)
		return 2
	}
	diags, err := framework.Run(fset, pkgs, as)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpx10-vet: %v\n", err)
		return 2
	}
	kept := diags[:0]
	for _, d := range diags {
		if !framework.Suppressed(fset, pkgs, d) {
			kept = append(kept, d)
		}
	}
	root, _ := os.Getwd()
	findings := framework.Findings(fset, root, kept)

	switch mode {
	case "json":
		if err := framework.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "dpx10-vet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := framework.WriteSARIF(os.Stdout, as, findings); err != nil {
			fmt.Fprintf(os.Stderr, "dpx10-vet: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s (%s)\n", f.File, f.Line, f.Column, f.Severity, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dpx10-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
