// Command dpx10-vet runs the DPX10 static-analysis suite — the APGAS
// place-isolation and wire-protocol invariants X10's compiler would have
// enforced for us — over the packages matching the given patterns.
//
// Usage:
//
//	dpx10-vet [-list] [packages]
//
// With no patterns it analyzes ./... relative to the current directory.
// The preferred entry point is `make vet`, which builds and runs it over
// the whole module; scripts/tier1.sh runs the same check as part of the
// tier-1 gate. Exit status is 1 when any diagnostic is reported, 2 on
// load/usage errors.
//
// Analyzers:
//
//	placeleak   handlers/decoders must not retain payload aliases
//	protokind   every kind* constant registered, named, fuzz-covered
//	lockheld    no blocking ops while a sync.Mutex/RWMutex is held
//	atomicmix   no mixed atomic and plain access to the same variable
//	metricname  every metrics Registry lookup constant, registered, kind-matched
//
// Suppressions. A finding is silenced by a comment on the flagged line or
// the line directly above it:
//
//	//dpx10:allow <analyzer>[,<analyzer>] <rationale>
//
// e.g. `return p, nil //dpx10:allow placeleak test echo handler`. The
// rationale is free text but required by convention: an allow without a
// reason does not survive review.
package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/dpx10/dpx10/internal/analysis/atomicmix"
	"github.com/dpx10/dpx10/internal/analysis/framework"
	"github.com/dpx10/dpx10/internal/analysis/lockheld"
	"github.com/dpx10/dpx10/internal/analysis/metricname"
	"github.com/dpx10/dpx10/internal/analysis/placeleak"
	"github.com/dpx10/dpx10/internal/analysis/protokind"
)

var analyzers = []*framework.Analyzer{
	placeleak.Analyzer,
	protokind.Analyzer,
	lockheld.Analyzer,
	atomicmix.Analyzer,
	metricname.Analyzer,
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-list" {
		names := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			names = append(names, fmt.Sprintf("%-10s %s", a.Name, a.Doc))
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	os.Exit(run(args))
}

func run(patterns []string) int {
	fset, pkgs, err := framework.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpx10-vet: %v\n", err)
		return 2
	}
	diags, err := framework.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpx10-vet: %v\n", err)
		return 2
	}
	bad := 0
	for _, d := range diags {
		if framework.Suppressed(fset, pkgs, d) {
			continue
		}
		bad++
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "dpx10-vet: %d finding(s)\n", bad)
		return 1
	}
	return 0
}
