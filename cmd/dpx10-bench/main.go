// Command dpx10-bench regenerates the tables and figures of the paper's
// evaluation (§VIII) and the repository's ablations.
//
// Usage:
//
//	dpx10-bench -fig all            # everything, paper-scale models
//	dpx10-bench -fig 10             # one figure
//	dpx10-bench -fig 12 -quick      # smaller sizes for a fast pass
//	dpx10-bench -fig 11 -csv        # machine-readable output
//
// Figures 10/11/13 run on the deterministic cluster simulator at the
// paper's vertex counts; figure 12 and the ablations run on the real
// runtime on this machine. See EXPERIMENTS.md for the paper-vs-measured
// record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dpx10/dpx10/internal/bench"
	"github.com/dpx10/dpx10/internal/cli"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(bench.Names(), ", ")+", or all")
	quick := flag.Bool("quick", false, "use reduced sizes (fast smoke pass)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write each report to this directory (.txt and .csv)")
	var prof cli.ProfileParams
	flag.StringVar(&prof.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&prof.Mem, "memprofile", "", "write an allocation profile to this file")
	flag.StringVar(&prof.Mutex, "mutexprofile", "", "write a mutex-contention profile to this file")
	flag.Parse()

	stopProf, err := cli.StartProfiles(prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-bench:", err)
		os.Exit(1)
	}
	if *outDir != "" {
		err = bench.RunFiles(*fig, *quick, *outDir, os.Stdout)
	} else {
		err = bench.Run(*fig, *quick, *asCSV, os.Stdout)
	}
	if perr := stopProf(); perr != nil {
		fmt.Fprintln(os.Stderr, "dpx10-bench:", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-bench:", err)
		os.Exit(1)
	}
}
