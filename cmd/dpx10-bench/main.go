// Command dpx10-bench regenerates the tables and figures of the paper's
// evaluation (§VIII) and the repository's ablations.
//
// Usage:
//
//	dpx10-bench -fig all            # everything, paper-scale models
//	dpx10-bench -fig 10             # one figure
//	dpx10-bench -fig 12 -quick      # smaller sizes for a fast pass
//	dpx10-bench -fig 11 -csv        # machine-readable output
//
// Figures 10/11/13 run on the deterministic cluster simulator at the
// paper's vertex counts; figure 12 and the ablations run on the real
// runtime on this machine. See EXPERIMENTS.md for the paper-vs-measured
// record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/bench"
	"github.com/dpx10/dpx10/internal/cli"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(bench.Names(), ", ")+", or all")
	quick := flag.Bool("quick", false, "use reduced sizes (fast smoke pass)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write each report to this directory (.txt and .csv)")
	showMetrics := flag.Bool("metrics", false, "print aggregate metrics over every real-runtime run after the figures")
	metricsJSON := flag.Bool("metrics-json", false, "print the metrics dump as JSON (implies -metrics)")
	metricsAddr := flag.String("metrics-addr", "", "serve live Prometheus metrics (latest finished run) at http://<addr>/metrics")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event spans across all real-runtime runs to this file")
	var prof cli.ProfileParams
	flag.StringVar(&prof.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&prof.Mem, "memprofile", "", "write an allocation profile to this file")
	flag.StringVar(&prof.Mutex, "mutexprofile", "", "write a mutex-contention profile to this file")
	flag.Parse()

	stopProf, err := cli.StartProfiles(prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-bench:", err)
		os.Exit(1)
	}

	var collector cli.MetricsCollector
	if *showMetrics || *metricsJSON || *metricsAddr != "" {
		bench.ExtraRunOptions = append(bench.ExtraRunOptions,
			dpx10.WithMetricsObserver(collector.Observe))
	}
	var spans *dpx10.SpanLog
	if *traceOut != "" {
		spans = dpx10.NewSpanLog(0)
		bench.ExtraRunOptions = append(bench.ExtraRunOptions, dpx10.WithSpans(spans))
	}
	if *metricsAddr != "" {
		stop, err := cli.ServeMetrics(*metricsAddr, collector.Latest, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpx10-bench:", err)
			os.Exit(1)
		}
		defer stop()
	}

	if *outDir != "" {
		err = bench.RunFiles(*fig, *quick, *outDir, os.Stdout)
	} else {
		err = bench.Run(*fig, *quick, *asCSV, os.Stdout)
	}

	if *showMetrics || *metricsJSON {
		if total, runs := collector.Total(); total != nil {
			fmt.Fprintf(os.Stdout, "aggregate metrics over %d real-runtime runs:\n", runs)
			if derr := cli.DumpMetrics(os.Stdout, []*dpx10.MetricsSnapshot{total}, *metricsJSON); derr != nil && err == nil {
				err = derr
			}
		}
	}
	if spans != nil {
		if terr := cli.WriteChromeTrace(*traceOut, spans, os.Stdout); terr != nil && err == nil {
			err = terr
		}
	}
	if perr := stopProf(); perr != nil {
		fmt.Fprintln(os.Stderr, "dpx10-bench:", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-bench:", err)
		os.Exit(1)
	}
}
