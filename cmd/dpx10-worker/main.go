// Command dpx10-worker runs one place of a multi-process DPX10
// deployment over TCP — the analogue of launching an X10 program with one
// OS process per place (Socket runtime).
//
// Start one process per place with identical flags except -place:
//
//	dpx10-worker -place 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -app swlag -m 400 &
//	dpx10-worker -place 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 -app swlag -m 400 &
//
// Place 0 coordinates; when it exits, the computation finished. Killing a
// non-zero worker process mid-run exercises the recovery mechanism: the
// survivors redistribute the DAG and continue.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dpx10/dpx10/internal/cli"
)

func main() {
	var p cli.Params
	var place int
	var addrList string
	flag.IntVar(&place, "place", -1, "this process's place id (0..len(addrs)-1)")
	flag.StringVar(&addrList, "addrs", "", "comma-separated host:port of every place, in place order")
	flag.StringVar(&p.App, "app", "swlag", "application: swlag | mtp | lps | lcs | knapsack")
	flag.IntVar(&p.M, "m", 200, "first dimension")
	flag.IntVar(&p.N, "n", 0, "second dimension (defaults to -m)")
	flag.IntVar(&p.Items, "items", 50, "knapsack: number of items")
	flag.IntVar(&p.Capacity, "capacity", 400, "knapsack: capacity")
	flag.Int64Var(&p.Seed, "seed", 1, "workload seed (must match across places)")
	flag.IntVar(&p.Threads, "threads", 2, "worker threads (X10_NTHREADS)")
	flag.IntVar(&p.Jobs, "jobs", 1, "concurrent identical jobs on the deployment (must match across places)")
	flag.StringVar(&p.Strategy, "strategy", "local", "scheduling: local | random | mincomm | steal")
	flag.BoolVar(&p.Lifelines, "lifelines", false, "GLB lifeline load balancing (implies -strategy steal; must match across places)")
	flag.IntVar(&p.LifelineProbes, "lifeline-probes", 0, "lifelines: random steal probes before parking (0 = default 2)")
	flag.IntVar(&p.LifelineEdges, "lifeline-edges", 0, "lifelines: outgoing lifeline edges per place (0 = auto)")
	flag.StringVar(&p.Dist, "dist", "blockrow", "distribution: blockrow | blockcol | cyclicrow | cycliccol")
	flag.IntVar(&p.Cache, "cache", 0, "remote-vertex cache entries per place")
	flag.IntVar(&p.TileSize, "tile", 0, "scheduling granularity in cells (0 = auto, 1 = per-vertex; must match across places)")
	flag.BoolVar(&p.RestoreRemote, "restore-remote", false, "recovery copies moved results instead of recomputing")
	flag.BoolVar(&p.NoPipeline, "no-pipeline", false, "disable the batched-writev send pipeline (one write per frame)")
	flag.BoolVar(&p.NoCompress, "no-compress", false, "disable payload compression on the send pipeline")
	flag.IntVar(&p.CompressMin, "compress-min", 0, "smallest payload to try compressing, in bytes (0 = default 1024)")
	flag.BoolVar(&p.Metrics, "metrics", false, "print this place's metrics after the run (place 0 aggregates all places; must match across places)")
	flag.BoolVar(&p.MetricsJSON, "metrics-json", false, "print the metrics dump as JSON (implies -metrics)")
	flag.StringVar(&p.MetricsAddr, "metrics-addr", "", "serve live Prometheus metrics at http://<addr>/metrics during the run")
	flag.StringVar(&p.TraceOut, "trace-out", "", "write this place's Chrome trace-event spans to this file")
	flag.Parse()
	p.Kill = -1

	addrs := strings.Split(addrList, ",")
	if addrList == "" || len(addrs) < 1 {
		fmt.Fprintln(os.Stderr, "dpx10-worker: -addrs is required")
		os.Exit(2)
	}
	if place < 0 || place >= len(addrs) {
		fmt.Fprintf(os.Stderr, "dpx10-worker: -place must be in [0,%d)\n", len(addrs))
		os.Exit(2)
	}
	if err := cli.RunWorker(p, place, addrs, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-worker:", err)
		os.Exit(1)
	}
}
