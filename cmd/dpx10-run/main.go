// Command dpx10-run executes one of the built-in DP applications on the
// single-process DPX10 runtime.
//
// Examples:
//
//	dpx10-run -app swlag -m 400 -n 400 -places 8 -threads 4 -verify
//	dpx10-run -app knapsack -items 80 -capacity 600 -places 6
//	dpx10-run -app mtp -m 300 -n 300 -kill 2       # fault injection demo
//	dpx10-run -app lps -m 250 -strategy mincomm -cache 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dpx10/dpx10/internal/cli"
)

func main() {
	var p cli.Params
	flag.StringVar(&p.App, "app", "swlag", "application: "+strings.Join(cli.AppNames(), " | "))
	flag.IntVar(&p.M, "m", 200, "first dimension (sequence/grid size)")
	flag.IntVar(&p.N, "n", 0, "second dimension (defaults to -m)")
	flag.IntVar(&p.Items, "items", 50, "knapsack: number of items")
	flag.IntVar(&p.Capacity, "capacity", 400, "knapsack: capacity")
	flag.Int64Var(&p.Seed, "seed", 1, "workload seed")
	flag.StringVar(&p.FileA, "file-a", "", "FASTA/plain-text file for the first sequence (alignment apps)")
	flag.StringVar(&p.FileB, "file-b", "", "FASTA/plain-text file for the second sequence")
	flag.IntVar(&p.Places, "places", 4, "number of places (X10_NPLACES)")
	flag.IntVar(&p.Threads, "threads", 2, "worker threads per place (X10_NTHREADS)")
	flag.IntVar(&p.Jobs, "jobs", 1, "concurrent identical jobs submitted to one persistent cluster")
	flag.StringVar(&p.Strategy, "strategy", "local", "scheduling: local | random | mincomm | steal")
	flag.BoolVar(&p.Lifelines, "lifelines", false, "GLB lifeline load balancing (implies -strategy steal)")
	flag.IntVar(&p.LifelineProbes, "lifeline-probes", 0, "lifelines: random steal probes before parking (0 = default 2)")
	flag.IntVar(&p.LifelineEdges, "lifeline-edges", 0, "lifelines: outgoing lifeline edges per place (0 = auto, ceil(log2(places)))")
	flag.StringVar(&p.Dist, "dist", "blockrow", "distribution: blockrow | blockcol | cyclicrow | cycliccol")
	flag.IntVar(&p.Cache, "cache", 0, "remote-vertex cache entries per place (0 = off)")
	flag.IntVar(&p.TileSize, "tile", 0, "scheduling granularity in cells (0 = auto, 1 = per-vertex)")
	flag.BoolVar(&p.RestoreRemote, "restore-remote", false, "recovery copies moved results instead of recomputing")
	flag.BoolVar(&p.Verify, "verify", false, "check the result against the serial reference")
	flag.IntVar(&p.Kill, "kill", -1, "kill this place at ~50% progress (fault-tolerance demo)")
	flag.BoolVar(&p.Trace, "trace", false, "print per-place utilization after the run")
	flag.Int64Var(&p.ChaosSeed, "chaos-seed", 1, "seed of the fault-injection schedule (reproducible)")
	flag.Float64Var(&p.ChaosDrop, "chaos-drop", 0, "chaos: per-message drop probability (0..1)")
	flag.Float64Var(&p.ChaosDup, "chaos-dup", 0, "chaos: per-message duplication probability (0..1)")
	flag.Float64Var(&p.ChaosDelay, "chaos-delay", 0, "chaos: per-message delay probability (0..1, 50us-1ms window)")
	flag.IntVar(&p.HeartbeatMs, "hb-ms", 0, "heartbeat probe interval, milliseconds (0 = no failure detector)")
	flag.IntVar(&p.HeartbeatMiss, "hb-miss", 5, "consecutive heartbeat misses before declaring a place dead")
	flag.BoolVar(&p.Metrics, "metrics", false, "print per-place metrics snapshots (plus aggregate) after the run")
	flag.BoolVar(&p.MetricsJSON, "metrics-json", false, "print the metrics dump as JSON (implies -metrics)")
	flag.StringVar(&p.MetricsAddr, "metrics-addr", "", "serve live Prometheus metrics at http://<addr>/metrics during the run")
	flag.StringVar(&p.TraceOut, "trace-out", "", "write Chrome trace-event spans (epochs, tiles, steals, recovery) to this file")
	var prof cli.ProfileParams
	flag.StringVar(&prof.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&prof.Mem, "memprofile", "", "write an allocation profile to this file")
	flag.StringVar(&prof.Mutex, "mutexprofile", "", "write a mutex-contention profile to this file")
	flag.Parse()

	stopProf, err := cli.StartProfiles(prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-run:", err)
		os.Exit(1)
	}
	runErr := cli.RunLocal(p, os.Stdout)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "dpx10-run:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dpx10-run:", runErr)
		os.Exit(1)
	}
}
