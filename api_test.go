package dpx10_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dpx10/dpx10"
)

// checkSW verifies a completed Smith-Waterman dag against the serial
// reference.
func checkSW(t *testing.T, dag *dpx10.Dag[int32], a, b string) {
	t.Helper()
	want := serialSW(a, b)
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				t.Fatalf("H(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

// gatedApp builds a swApp whose computation blocks after gateAt cells until
// released, so failure injection deterministically lands mid-run.
func gatedApp(a, b string, gateAt int64) (*swApp, chan struct{}, func()) {
	gate := make(chan struct{})
	resume := make(chan struct{})
	var count atomic.Int64
	var once sync.Once
	app := &swApp{a: a, b: b}
	app.onCompute = func() {
		n := count.Add(1)
		if n == gateAt {
			close(gate)
		}
		if n >= gateAt {
			<-resume
		}
	}
	return app, gate, func() { once.Do(func() { close(resume) }) }
}

// TestOptionsMixUntypedTypedDeprecated pins the redesigned options surface:
// untyped constructors, value-typed constructors and the deprecated
// T-suffixed generic aliases all compose in one option list.
func TestOptionsMixUntypedTypedDeprecated(t *testing.T) {
	a, b := "ACGTACGTACGT", "TACGTACGTA"
	app := &swApp{a: a, b: b}
	dag, err := dpx10.Run[int32](app, dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(3),                            // untyped
		dpx10.ThreadsT[int32](2),                   // deprecated generic alias
		dpx10.WithCodec[int32](dpx10.Int32Codec{}), // value-typed
		dpx10.CacheSizeT[int32](16),                // deprecated generic alias
		dpx10.WithStrategy(dpx10.LocalScheduling),
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkSW(t, dag, a, b)
}

// TestRunContextCancellation: canceling the context aborts the run like
// Cancel, and the returned error wraps the context's error (not just the
// internal ErrCanceled).
func TestRunContextCancellation(t *testing.T) {
	a := "GATTACAGATTACAGATTACAGATTACA"
	app, gate, release := gatedApp(a, a, 20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job, err := dpx10.LaunchContext[int32](ctx, app,
		dpx10.DiagonalPattern(int32(len(a)+1), int32(len(a)+1)), dpx10.Places(3))
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	cancel()
	release()
	_, err = job.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after ctx cancel = %v, want to wrap context.Canceled", err)
	}
}

// TestLaunchContextRejectsDeadContext: a context already expired at launch
// fails fast without starting a cluster.
func TestLaunchContextRejectsDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	app := &swApp{a: "ACGT", b: "ACGT"}
	if _, err := dpx10.LaunchContext[int32](ctx, app, dpx10.DiagonalPattern(5, 5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("launch with dead context = %v, want context.Canceled", err)
	}
}

// TestPlaceDeadErrorUnwrap pins the typed-error contract: killing place 0
// surfaces a *PlaceDeadError naming the place, which also matches
// ErrPlaceZeroDead under errors.Is.
func TestPlaceDeadErrorUnwrap(t *testing.T) {
	app := &swApp{a: "AAAAAAAAAAAAAAAAAAAA", b: "AAAAAAAAAAAAAAAAAAAA"}
	job, err := dpx10.Launch[int32](app, dpx10.DiagonalPattern(21, 21), dpx10.Places(3))
	if err != nil {
		t.Fatal(err)
	}
	job.Kill(0)
	_, err = job.Wait()
	var pd *dpx10.PlaceDeadError
	if !errors.As(err, &pd) {
		t.Fatalf("Wait = %v, want a *PlaceDeadError in the chain", err)
	}
	if pd.Place != 0 {
		t.Fatalf("PlaceDeadError.Place = %d, want 0", pd.Place)
	}
	if !errors.Is(err, dpx10.ErrPlaceZeroDead) {
		t.Fatalf("err = %v, want to match ErrPlaceZeroDead", err)
	}
}

// TestWithEventsObservesRecovery: a mid-run kill shows up on the structured
// event stream as a death followed by recovery start/finish, and the run
// still produces the exact fault-free result.
func TestWithEventsObservesRecovery(t *testing.T) {
	a, b := "GATTACAGATTACAGATTACAGATTACA", "CATACGATTACATACGATTACA"
	app, gate, release := gatedApp(a, b, 50)
	var mu sync.Mutex
	var events []dpx10.Event
	job, err := dpx10.Launch[int32](app,
		dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(4),
		dpx10.WithEvents(func(ev dpx10.Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	job.Kill(2)
	release()
	dag, err := job.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkSW(t, dag, a, b)
	mu.Lock()
	defer mu.Unlock()
	var sawDead, sawStart, sawFinish bool
	for _, ev := range events {
		switch ev.Kind {
		case dpx10.EventPlaceDead:
			if ev.Place == 2 {
				sawDead = true
			}
		case dpx10.EventRecoveryStarted:
			sawStart = true
		case dpx10.EventRecoveryFinished:
			sawFinish = true
			if ev.Duration <= 0 {
				t.Error("EventRecoveryFinished with non-positive duration")
			}
		}
	}
	if !sawDead || !sawStart || !sawFinish {
		t.Fatalf("events missing: dead=%v start=%v finish=%v (%d events)",
			sawDead, sawStart, sawFinish, len(events))
	}
}

// TestWithChaosEndToEnd: a seeded drop/dup/delay plan over the public API
// still yields the exact serial result, the plan reports injected faults,
// and the reliable layer's counters account for the tolerated damage.
func TestWithChaosEndToEnd(t *testing.T) {
	a, b := "GGTTGACTAGGTTGACTAGGTTGACTA", "TGTTACGGACCGTTACGGAC"
	plan := &dpx10.ChaosPlan{
		Seed:     42,
		Drop:     0.05,
		Dup:      0.08,
		Delay:    0.15,
		DelayMin: 50 * time.Microsecond,
		DelayMax: time.Millisecond,
	}
	app := &swApp{a: a, b: b}
	dag, err := dpx10.Run[int32](app,
		dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(3),
		dpx10.WithChaos(plan),
		dpx10.WithHeartbeat(2*time.Millisecond, 5),
		dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatalf("Run under chaos: %v", err)
	}
	checkSW(t, dag, a, b)
	if plan.Stats().Total() == 0 {
		t.Fatal("chaos plan injected nothing")
	}
	st := dag.Stats()
	if st.Retries == 0 && plan.Stats().Dropped > 0 {
		t.Fatal("messages were dropped but the reliable layer never retried")
	}
}

// TestKillUnannouncedDetectedViaAPI: with WithHeartbeat configured, a place
// that dies without any announcement is detected and recovered from through
// the public API alone.
func TestKillUnannouncedDetectedViaAPI(t *testing.T) {
	a, b := "GATTACAGATTACAGATTACAGATTACA", "CATACGATTACATACGATTACA"
	app, gate, release := gatedApp(a, b, 60)
	job, err := dpx10.Launch[int32](app,
		dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(4),
		dpx10.WithHeartbeat(2*time.Millisecond, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	job.KillUnannounced(2)
	release()
	dag, err := job.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if dag.Stats().Recoveries < 1 {
		t.Fatal("unannounced death never recovered through the API")
	}
	checkSW(t, dag, a, b)
}

// TestWithRetryBudgetDeclaresUnreachablePeer: with a finite retry budget
// and no heartbeat detector, a permanently severed link is escalated by the
// reliable layer itself — exhaustion declares the unreachable peer dead,
// recovery excludes it, and the survivor still produces the exact result.
func TestWithRetryBudgetDeclaresUnreachablePeer(t *testing.T) {
	a := "GATTACAGATTACAGATTACA"
	plan := &dpx10.ChaosPlan{
		Seed: 7,
		// Sever both directions between place 0 and place 1 permanently; no
		// heartbeat detector runs, so only the retry budget can end the
		// stalemate.
		Partitions: []dpx10.ChaosPartition{
			{From: 0, To: 1, Start: 0, End: time.Hour},
			{From: 1, To: 0, Start: 0, End: time.Hour},
		},
	}
	app := &swApp{a: a, b: a}
	dag, err := dpx10.Run[int32](app,
		dpx10.DiagonalPattern(int32(len(a)+1), int32(len(a)+1)),
		dpx10.Places(2),
		dpx10.WithChaos(plan),
		dpx10.WithRetry(8, 100*time.Microsecond, time.Millisecond))
	if err != nil {
		t.Fatalf("Run across a severed link: %v", err)
	}
	checkSW(t, dag, a, a)
	if dag.Stats().Recoveries < 1 {
		t.Fatal("retry exhaustion never declared the unreachable peer")
	}
	if plan.Stats().Partitioned == 0 {
		t.Fatal("partition plan never fired")
	}
}
