package dpx10

import (
	"github.com/dpx10/dpx10/internal/dag"
	"github.com/dpx10/dpx10/internal/dag/patterns"
)

// The eight built-in DAG patterns of the paper's Figure 5, plus the
// 0/1-knapsack custom pattern of Figure 8. Constructors are thin wrappers
// over the pattern library so applications can stay on the public API.

// GridPattern (Fig 5a): (i,j) depends on its left and top neighbours —
// Manhattan Tourists and the 2D/0D family.
func GridPattern(h, w int32) Pattern { return patterns.NewGrid(h, w) }

// DiagonalPattern (Fig 5b): left, top and top-left neighbours — LCS and
// Smith-Waterman.
func DiagonalPattern(h, w int32) Pattern { return patterns.NewDiagonal(h, w) }

// RowWavePattern (Fig 5c): (i,j) depends on the whole previous row.
func RowWavePattern(h, w int32) Pattern { return patterns.NewRowWave(h, w) }

// IntervalPattern (Fig 5d): interval DP on the upper triangle — Longest
// Palindromic Subsequence.
func IntervalPattern(n int32) Pattern { return patterns.NewInterval(n) }

// ColWavePattern (Fig 5e): (i,j) depends on the whole previous column.
func ColWavePattern(h, w int32) Pattern { return patterns.NewColWave(h, w) }

// ChainPattern (Fig 5f): independent left-to-right chains, one per row.
func ChainPattern(h, w int32) Pattern { return patterns.NewChain(h, w) }

// TrianglePattern (Fig 5g): the 2D/1D interval family — matrix-chain
// multiplication, optimal BST.
func TrianglePattern(n int32) Pattern { return patterns.NewTriangle(n) }

// BandedPattern (Fig 5h): the diagonal wavefront restricted to the band
// |i-j| <= band — banded sequence alignment.
func BandedPattern(h, w, band int32) Pattern { return patterns.NewBanded(h, w, band) }

// KnapsackPattern (Fig 8): the 0/1 knapsack dependency structure for the
// given item weights and capacity — the paper's worked example of a
// custom pattern.
func KnapsackPattern(weights []int32, capacity int32) (Pattern, error) {
	return patterns.NewKnapsack(weights, capacity)
}

// CheckPattern validates a (custom) pattern exhaustively: bounds,
// dependency/anti-dependency symmetry and acyclicity. Run it in tests for
// every custom pattern; it walks all cells, so keep the size small.
func CheckPattern(p Pattern) error { return dag.Check(p) }
