package dpx10_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/dpx10/dpx10"
)

// swApp is the paper's Figure 7 Smith-Waterman demo, ported verbatim:
// match +2, mismatch -1, gap -1, diagonal DAG pattern.
type swApp struct {
	a, b       string
	finished   atomic.Int32
	best       atomic.Int32
	onFinished func(dag *dpx10.Dag[int32])
	onCompute  func() // test hook, called before each cell computes
}

func (s *swApp) Compute(i, j int32, deps []dpx10.Cell[int32]) int32 {
	if s.onCompute != nil {
		s.onCompute()
	}
	if i == 0 || j == 0 {
		return 0
	}
	var diag, up, left int32
	for _, d := range deps {
		switch {
		case d.ID.I == i-1 && d.ID.J == j-1:
			diag = d.Value
		case d.ID.I == i-1 && d.ID.J == j:
			up = d.Value
		case d.ID.I == i && d.ID.J == j-1:
			left = d.Value
		}
	}
	score := diag - 1
	if s.a[i-1] == s.b[j-1] {
		score = diag + 2
	}
	v := max(int32(0), score, up-1, left-1)
	if v > s.best.Load() {
		s.best.Store(v)
	}
	return v
}

func (s *swApp) AppFinished(dag *dpx10.Dag[int32]) {
	s.finished.Add(1)
	if s.onFinished != nil {
		s.onFinished(dag)
	}
}

// serialSW is the straightforward nested-loop Smith-Waterman.
func serialSW(a, b string) [][]int32 {
	h := make([][]int32, len(a)+1)
	for i := range h {
		h[i] = make([]int32, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			s := h[i-1][j-1] - 1
			if a[i-1] == b[j-1] {
				s = h[i-1][j-1] + 2
			}
			h[i][j] = max(0, s, h[i-1][j]-1, h[i][j-1]-1)
		}
	}
	return h
}

func TestSmithWatermanMatchesSerial(t *testing.T) {
	a := "GGTTGACTAGGTTGACTAGGTTGACTA"
	b := "TGTTACGGACCGTTACGGAC"
	app := &swApp{a: a, b: b}
	dag, err := dpx10.Run[int32](app, dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(4), dpx10.Threads(2), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := serialSW(a, b)
	for i := int32(0); i <= int32(len(a)); i++ {
		for j := int32(0); j <= int32(len(b)); j++ {
			if got := dag.Result(i, j); got != want[i][j] {
				t.Fatalf("H(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	if app.finished.Load() != 1 {
		t.Fatalf("AppFinished called %d times, want 1", app.finished.Load())
	}
	if dag.Height() != int32(len(a)+1) || dag.Width() != int32(len(b)+1) {
		t.Fatalf("bounds = %dx%d", dag.Height(), dag.Width())
	}
	if dag.Stats().ComputedCells == 0 || dag.Elapsed() <= 0 {
		t.Fatal("run stats empty")
	}
}

func TestAppFinishedSeesResults(t *testing.T) {
	app := &swApp{a: "ACGT", b: "ACGT"}
	var sawBest int32 = -1
	app.onFinished = func(dag *dpx10.Dag[int32]) {
		sawBest = dag.Result(4, 4)
	}
	if _, err := dpx10.Run[int32](app, dpx10.DiagonalPattern(5, 5), dpx10.Places(2)); err != nil {
		t.Fatal(err)
	}
	if sawBest != 8 { // 4 matches x +2
		t.Fatalf("AppFinished saw H(4,4) = %d, want 8", sawBest)
	}
}

func TestRunOptions(t *testing.T) {
	a, b := "ACGTACGTAC", "TACGTACG"
	want := serialSW(a, b)
	pat := func() dpx10.Pattern { return dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)) }
	check := func(t *testing.T, opts ...dpx10.Option[int32]) {
		t.Helper()
		app := &swApp{a: a, b: b}
		dag, err := dpx10.Run[int32](app, pat(), opts...)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for i := 0; i <= len(a); i++ {
			for j := 0; j <= len(b); j++ {
				if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
					t.Fatalf("H(%d,%d) = %d, want %d", i, j, got, want[i][j])
				}
			}
		}
	}
	t.Run("blockcol", func(t *testing.T) {
		check(t, dpx10.Places(3), dpx10.WithDist(dpx10.BlockColDist))
	})
	t.Run("cyclicrow+cache", func(t *testing.T) {
		check(t, dpx10.Places(3), dpx10.WithDist(dpx10.CyclicRowDist), dpx10.CacheSize(32))
	})
	t.Run("mincomm", func(t *testing.T) {
		check(t, dpx10.Places(3), dpx10.WithStrategy(dpx10.MinCommScheduling))
	})
	t.Run("random", func(t *testing.T) {
		check(t, dpx10.Places(3), dpx10.WithStrategy(dpx10.RandomScheduling))
	})
	t.Run("customdist", func(t *testing.T) {
		check(t, dpx10.Places(3), dpx10.WithCustomDist(func(i, j int32, places int) int {
			return int((i + j)) % places
		}))
	})
}

func TestLaunchKillRecovers(t *testing.T) {
	a, b := "GATTACAGATTACAGATTACAGATTACA", "CATACGATTACATACGATTACA"
	// Gate the computation so the kill deterministically lands mid-run:
	// after 50 cells, every further compute blocks until the kill is done.
	gate := make(chan struct{})
	resume := make(chan struct{})
	var count atomic.Int64
	app := &swApp{a: a, b: b}
	app.onCompute = func() {
		n := count.Add(1)
		if n == 50 {
			close(gate)
		}
		if n >= 50 {
			<-resume
		}
	}
	job, err := dpx10.Launch[int32](app, dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(4), dpx10.WithCodec[int32](dpx10.Int32Codec{}))
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	job.Kill(2)
	close(resume)
	dag, err := job.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if dag.Stats().Recoveries < 1 {
		t.Fatal("no recovery recorded")
	}
	want := serialSW(a, b)
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				t.Fatalf("post-recovery H(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func TestKillPlaceZero(t *testing.T) {
	app := &swApp{a: "AAAAAAAAAAAAAAAAAAAA", b: "AAAAAAAAAAAAAAAAAAAA"}
	job, err := dpx10.Launch[int32](app, dpx10.DiagonalPattern(21, 21), dpx10.Places(3))
	if err != nil {
		t.Fatal(err)
	}
	job.Kill(0)
	if _, err := job.Wait(); !errors.Is(err, dpx10.ErrPlaceZeroDead) {
		t.Fatalf("err = %v, want ErrPlaceZeroDead", err)
	}
}

func TestNilAppRejected(t *testing.T) {
	if _, err := dpx10.Run[int32](nil, dpx10.GridPattern(2, 2)); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestCheckPatternOnCustom(t *testing.T) {
	ks, err := dpx10.KnapsackPattern([]int32{2, 3, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := dpx10.CheckPattern(ks); err != nil {
		t.Fatalf("CheckPattern(knapsack): %v", err)
	}
	for _, p := range []dpx10.Pattern{
		dpx10.GridPattern(5, 5), dpx10.DiagonalPattern(5, 6), dpx10.RowWavePattern(4, 4),
		dpx10.IntervalPattern(5), dpx10.ColWavePattern(4, 4), dpx10.ChainPattern(3, 6),
		dpx10.TrianglePattern(5), dpx10.BandedPattern(6, 6, 2),
	} {
		if err := dpx10.CheckPattern(p); err != nil {
			t.Fatalf("CheckPattern: %v", err)
		}
	}
}

func TestJobCancel(t *testing.T) {
	a := "GATTACAGATTACAGATTACAGATTACAGATTACA"
	gate := make(chan struct{})
	resume := make(chan struct{})
	var count atomic.Int64
	app := &swApp{a: a, b: a}
	app.onCompute = func() {
		if count.Add(1) == 20 {
			close(gate)
		}
		if count.Load() >= 20 {
			<-resume
		}
	}
	job, err := dpx10.Launch[int32](app, dpx10.DiagonalPattern(int32(len(a)+1), int32(len(a)+1)),
		dpx10.Places(3))
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	job.Cancel()
	close(resume)
	if _, err := job.Wait(); !errors.Is(err, dpx10.ErrCanceled) {
		t.Fatalf("Wait after Cancel = %v, want ErrCanceled", err)
	}
}

func TestBlock2DDistOption(t *testing.T) {
	app := &swApp{a: "ACGTACGTACGTACGT", b: "TGCATGCATGCATGCA"}
	dag, err := dpx10.Run[int32](app, dpx10.DiagonalPattern(17, 17),
		dpx10.Places(4), dpx10.WithBlock2DDist(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := serialSW(app.a, app.b)
	for i := 0; i <= 16; i++ {
		for j := 0; j <= 16; j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				t.Fatalf("H(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func TestBlockCyclicDistOption(t *testing.T) {
	a, b := "GATTACAGATTACAGATTACA", "CATACGATTACATACGAT"
	app := &swApp{a: a, b: b}
	dag, err := dpx10.Run[int32](app, dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1)),
		dpx10.Places(3), dpx10.WithBlockCyclicDist(2))
	if err != nil {
		t.Fatal(err)
	}
	want := serialSW(a, b)
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			if got := dag.Result(int32(i), int32(j)); got != want[i][j] {
				t.Fatalf("H(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}
