package dpx10_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/dpx10/dpx10"
	"github.com/dpx10/dpx10/internal/metrics"
)

func newSWPair() (*swApp, dpx10.Pattern) {
	a := "GGTTGACTAGGTTGACTA"
	b := "TGTTACGGACCGTTACGG"
	return &swApp{a: a, b: b}, dpx10.DiagonalPattern(int32(len(a)+1), int32(len(b)+1))
}

func checkSWApp(t *testing.T, app *swApp, dag *dpx10.Dag[int32]) {
	t.Helper()
	want := serialSW(app.a, app.b)
	for i := int32(0); i < dag.Height(); i++ {
		for j := int32(0); j < dag.Width(); j++ {
			if got := dag.Result(i, j); got != want[i][j] {
				t.Fatalf("cell (%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	if app.finished.Load() != 1 {
		t.Fatalf("AppFinished ran %d times", app.finished.Load())
	}
}

func TestNewClusterRejectsJobOptions(t *testing.T) {
	_, err := dpx10.NewCluster(dpx10.Places(2), dpx10.WithTileSize(4))
	var se *dpx10.OptionScopeError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *OptionScopeError", err)
	}
	if se.Option != "WithTileSize" || se.Scope != "job" || se.Call != "NewCluster" {
		t.Fatalf("unexpected error fields: %+v", se)
	}
}

func TestSubmitRejectsClusterOptions(t *testing.T) {
	c, err := dpx10.NewCluster(dpx10.Places(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	app, pat := newSWPair()
	_, err = dpx10.Submit[int32](context.Background(), c, app, pat, dpx10.ThreadsT[int32](4))
	var se *dpx10.OptionScopeError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *OptionScopeError", err)
	}
	if se.Option != "Threads" || se.Scope != "cluster" || se.Call != "Submit" {
		t.Fatalf("unexpected error fields: %+v", se)
	}
	// The rejection must not poison the cluster.
	job, err := dpx10.Submit[int32](context.Background(), c, app, pat)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkSWApp(t, app, dag)
}

func TestClusterTwoConcurrentJobs(t *testing.T) {
	c, err := dpx10.NewCluster(dpx10.Places(4), dpx10.Threads(2), dpx10.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	app1, pat1 := newSWPair()
	app2, pat2 := newSWPair()
	j1, err := dpx10.Submit[int32](ctx, c, app1, pat1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := dpx10.Submit[int32](ctx, c, app2, pat2, dpx10.WithTileSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID() == j2.ID() {
		t.Fatalf("jobs share id %d", j1.ID())
	}
	d1, err := j1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkSWApp(t, app1, d1)
	checkSWApp(t, app2, d2)
	for _, info := range c.Jobs() {
		if info.State != dpx10.JobFinished {
			t.Fatalf("job %d still %s after Wait", info.ID, info.State)
		}
	}
	// The shared registries partition tile counts by job: the job.* vector
	// slots must sum to the scheduler totals on every place.
	for _, s := range c.Metrics() {
		var jobs int64
		for _, v := range s.Vecs[metrics.JobTilesExecuted] {
			jobs += v
		}
		if want := s.Counters[metrics.SchedTilesExecuted]; jobs != want {
			t.Fatalf("place %d: job tile slots sum to %d, scheduler counter %d", s.Place, jobs, want)
		}
	}
}

func TestClusterAdmissionQueue(t *testing.T) {
	c, err := dpx10.NewCluster(dpx10.Places(2), dpx10.MaxActiveJobs(1), dpx10.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	gate := make(chan struct{})
	appA, patA := newSWPair()
	appA.onCompute = func() { <-gate }
	appB, patB := newSWPair()
	jA, err := dpx10.Submit[int32](ctx, c, appA, patA)
	if err != nil {
		t.Fatal(err)
	}
	jB, err := dpx10.Submit[int32](ctx, c, appB, patB)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if a, q := c.ActiveJobs(); a == 1 && q == 1 {
			break
		}
		if time.Now().After(deadline) {
			a, q := c.ActiveJobs()
			t.Fatalf("admission state (%d active, %d queued), want (1, 1)", a, q)
		}
		time.Sleep(time.Millisecond)
	}
	var queued bool
	for _, info := range c.Jobs() {
		if info.ID == jB.ID() && info.State == dpx10.JobQueued {
			queued = true
		}
	}
	if !queued {
		t.Fatalf("job %d not reported queued: %+v", jB.ID(), c.Jobs())
	}
	close(gate)
	dA, err := jA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	dB, err := jB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkSWApp(t, appA, dA)
	checkSWApp(t, appB, dB)
	if jB.QueueWait() <= 0 {
		t.Fatal("queued job reports zero queue wait")
	}
	if a, q := c.ActiveJobs(); a != 0 || q != 0 {
		t.Fatalf("cluster not drained: (%d active, %d queued)", a, q)
	}
}

func TestSubmitContextCancelWhileQueued(t *testing.T) {
	c, err := dpx10.NewCluster(dpx10.Places(2), dpx10.MaxActiveJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gate := make(chan struct{})
	defer close(gate)
	appA, patA := newSWPair()
	appA.onCompute = func() { <-gate }
	if _, err := dpx10.Submit[int32](context.Background(), c, appA, patA); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	appB, patB := newSWPair()
	jB, err := dpx10.Submit[int32](ctx, c, appB, patB)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := jB.Wait(); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job canceled via ctx returned %v", err)
	}
	if appB.finished.Load() != 0 {
		t.Fatal("canceled job ran AppFinished")
	}
}
