package dpx10

import (
	"fmt"
	"time"

	"github.com/dpx10/dpx10/internal/core"
	"github.com/dpx10/dpx10/internal/dist"
	"github.com/dpx10/dpx10/internal/distarray"
	"github.com/dpx10/dpx10/internal/sched"
	"github.com/dpx10/dpx10/internal/trace"
	"github.com/dpx10/dpx10/internal/transport"
)

// Option configures a run. Most options are independent of the vertex value
// type and are written without a type argument:
//
//	dpx10.Run[int32](app, pattern, dpx10.Places(8), dpx10.Threads(6))
//
// Only value-typed settings (WithCodec, WithSnapshotRecovery) remain
// generic; both forms mix freely in one option list. The interface is
// satisfied through unexported methods whose signatures do not mention T,
// which is what lets an untyped option satisfy Option[T] for every T.
//
// Every option has a scope. Cluster-scoped options shape the places
// (Places, Threads, transport, chaos, metrics, admission); job-scoped
// options shape one computation (strategy, cache, tile size, codec,
// distribution, recovery). The one-shot entry points (Run, Launch) accept
// both in one list; the session API enforces the split — NewCluster
// rejects job-scoped options and Submit rejects cluster-scoped ones, each
// with an *OptionScopeError.
//
// Earlier releases required a type argument on every option
// (dpx10.Places[int32](8)); those forms remain available as deprecated
// aliases with a T suffix (PlacesT, ThreadsT, ...).
type Option[T any] interface {
	// applyTo receives a *core.Config[T]; implementations either use the
	// type-independent core.Common via the CommonConfig accessor or assert
	// the concrete config type.
	applyTo(cfg any)
	// optionInfo names the option and reports its scope, for the session
	// API's scope enforcement.
	optionInfo() (name string, scope optionScope)
}

// UntypedOption is the type returned by the type-independent option
// constructors. It satisfies Option[T] for every vertex value type T.
type UntypedOption = Option[any]

// optionScope classifies where an option may appear.
type optionScope uint8

const (
	// scopeCluster: configures the places; valid in NewCluster and the
	// one-shot entry points, rejected by Submit.
	scopeCluster optionScope = iota + 1
	// scopeJob: configures one computation; valid in Submit and the
	// one-shot entry points, rejected by NewCluster.
	scopeJob
)

func (s optionScope) String() string {
	if s == scopeCluster {
		return "cluster"
	}
	return "job"
}

// OptionScopeError reports an option passed where its scope does not
// allow: a job-scoped option in NewCluster, or a cluster-scoped option in
// Submit. The one-shot entry points accept both scopes and never return
// it.
type OptionScopeError struct {
	// Option is the constructor name, e.g. "Places" or "WithTileSize".
	Option string
	// Scope is the option's scope: "cluster" or "job".
	Scope string
	// Call is where the option was misplaced: "NewCluster" or "Submit".
	Call string
}

func (e *OptionScopeError) Error() string {
	return fmt.Sprintf("dpx10: %s is a %s-scoped option and cannot be passed to %s", e.Option, e.Scope, e.Call)
}

// commonOption mutates the type-independent half of the configuration.
type commonOption struct {
	name  string
	scope optionScope
	fn    func(*core.Common)
}

func (o commonOption) applyTo(cfg any) {
	cc, ok := cfg.(interface{ CommonConfig() *core.Common })
	if !ok {
		panic(fmt.Sprintf("dpx10: option applied to unsupported config %T", cfg))
	}
	o.fn(cc.CommonConfig())
}

func (o commonOption) optionInfo() (string, optionScope) { return o.name, o.scope }

// clusterOpt and jobOpt build the untyped option values.
func clusterOpt(name string, fn func(*core.Common)) UntypedOption {
	return commonOption{name: name, scope: scopeCluster, fn: fn}
}

func jobOpt(name string, fn func(*core.Common)) UntypedOption {
	return commonOption{name: name, scope: scopeJob, fn: fn}
}

// typedOption mutates the full, value-typed configuration. Every typed
// option is job-scoped: it configures the computation, not the places.
type typedOption[T any] struct {
	name string
	fn   func(*core.Config[T])
}

func (o typedOption[T]) applyTo(cfg any) {
	c, ok := cfg.(*core.Config[T])
	if !ok {
		panic(fmt.Sprintf("dpx10: option for value type %T applied to config %T", o, cfg))
	}
	o.fn(c)
}

func (o typedOption[T]) optionInfo() (string, optionScope) { return o.name, scopeJob }

// Places sets the number of places — X10_NPLACES (default 1).
// Cluster-scoped.
func Places(n int) UntypedOption {
	return clusterOpt("Places", func(c *core.Common) { c.Places = n })
}

// Threads sets the per-place worker pool width — X10_NTHREADS (default 2).
// Cluster-scoped: the worker pools are shared by every job on the places.
func Threads(n int) UntypedOption {
	return clusterOpt("Threads", func(c *core.Common) { c.Threads = n })
}

// MaxActiveJobs bounds how many jobs a cluster admits concurrently;
// submissions beyond the bound queue FIFO until a running job finishes.
// 0 keeps the default of 2; negative removes the bound. Cluster-scoped.
func MaxActiveJobs(n int) UntypedOption {
	return clusterOpt("MaxActiveJobs", func(c *core.Common) { c.MaxActiveJobs = n })
}

// WithWeight sets a job's fair-share weight on the shared worker pools:
// the number of tiles a worker runs for this job per scheduling pass
// before moving on to the next job's slot. Equal weights (the default, 8)
// give tile-granular round-robin between concurrent jobs; a heavier job
// gets proportionally longer bursts. Job-scoped.
func WithWeight(n int) UntypedOption {
	return jobOpt("WithWeight", func(c *core.Common) { c.Weight = n })
}

// Strategy selects the vertex scheduling policy (paper §VI-C).
type Strategy = sched.Strategy

// Scheduling strategies.
const (
	LocalScheduling   = sched.Local
	RandomScheduling  = sched.Random
	MinCommScheduling = sched.MinComm
	// StealScheduling keeps execution owner-local but lets idle workers
	// pull ready vertices from busy places — this repository's extension
	// in the direction of the work-stealing schedulers the paper cites.
	StealScheduling = sched.Steal
)

// WithStrategy sets the scheduling strategy (default local). Job-scoped.
func WithStrategy(s Strategy) UntypedOption {
	return jobOpt("WithStrategy", func(c *core.Common) { c.Strategy = s })
}

// WithLifelines enables GLB-style lifeline load balancing and implies the
// Steal strategy: an idle place makes w bounded random-victim steal probes,
// then parks on its z lifeline buddies (a cyclic hypercube over the alive
// places) and goes quiet; a victim with surplus ready tiles pushes whole
// tiles, dependencies attached, to its parked buddies, and the buddies
// forward their own excess so work diffuses along the lifeline graph.
// w <= 0 keeps the default of 2 probes; z <= 0 auto-sizes to
// ceil(log2(places)) edges. Job-scoped.
func WithLifelines(w, z int) UntypedOption {
	return jobOpt("WithLifelines", func(c *core.Common) {
		c.Strategy = sched.Steal
		c.Lifelines = true
		if w > 0 {
			c.LifelineProbes = w
		}
		if z > 0 {
			c.LifelineEdges = z
		}
	})
}

// CacheSize sets the per-place remote-vertex cache capacity in entries;
// 0 disables the cache (paper §VI-E "Cache size"). Job-scoped: every job
// has its own cache.
func CacheSize(entries int) UntypedOption {
	return jobOpt("CacheSize", func(c *core.Common) { c.CacheSize = entries })
}

// WithTileSize sets the scheduling granularity: each place partitions its
// chunk into tiles of this many consecutive cells, tracks readiness per
// tile and executes a ready tile as one task in intra-tile dependency
// order — removing per-vertex queueing and intra-tile decrement traffic.
// 0 (the default) auto-sizes per place; 1 restores per-vertex scheduling.
// Patterns whose tile quotient graph would be cyclic under the chosen size
// fall back to per-vertex scheduling automatically (the run stays correct,
// just untiled). Job-scoped.
func WithTileSize(cells int) UntypedOption {
	return jobOpt("WithTileSize", func(c *core.Common) { c.TileSize = cells })
}

// WithAggregation tunes the outbound decrement aggregator, which is on by
// default: window bounds how long a buffered decrement may wait before
// its batch is flushed, maxBatch is the record count that flushes a
// destination's batch immediately. Zero values keep the defaults
// (1ms, 256 records). Job-scoped.
func WithAggregation(window time.Duration, maxBatch int) UntypedOption {
	return jobOpt("WithAggregation", func(c *core.Common) {
		c.AggDisabled = false
		c.AggWindow = window
		c.AggMaxBatch = maxBatch
	})
}

// WithoutAggregation disables cross-place decrement aggregation and value
// push, restoring one message per completed vertex per destination — the
// baseline arm of the agg ablation. Job-scoped.
func WithoutAggregation() UntypedOption {
	return jobOpt("WithoutAggregation", func(c *core.Common) { c.AggDisabled = true })
}

// WithoutValuePush keeps decrement aggregation but stops piggybacking
// finished vertex values onto the batches, isolating coalescing from
// fetch avoidance for measurement. Job-scoped.
func WithoutValuePush() UntypedOption {
	return jobOpt("WithoutValuePush", func(c *core.Common) { c.PushDisabled = true })
}

// RestoreRemote makes recovery copy finished vertices to their new owners
// instead of recomputing them — the paper's §VI-E "Restore manner" switch
// for computations that cost more than communication. Job-scoped.
func RestoreRemote() UntypedOption {
	return jobOpt("RestoreRemote", func(c *core.Common) { c.RestoreRemote = true })
}

// WithHeartbeat configures the failure detector: place 0 heartbeats every
// other place (and every other place heartbeats place 0 in the TCP
// deployment) once per interval, and threshold consecutive missed
// heartbeats declare a place dead. interval 0 disables the detector;
// threshold 0 keeps the default of 3. Cluster-scoped: one detector serves
// every job.
//
// The detection window for an unannounced crash is therefore bounded by
// roughly interval × threshold plus one round-trip.
func WithHeartbeat(interval time.Duration, threshold int) UntypedOption {
	return clusterOpt("WithHeartbeat", func(c *core.Common) {
		c.ProbeInterval = interval
		c.SuspicionThreshold = threshold
	})
}

// WithReliableDelivery turns on the reliable delivery layer: protocol
// messages carry sequence numbers, transient send failures are retried
// with exponential backoff and jitter, and receivers suppress duplicate
// deliveries. Chaos injection (WithChaos) enables it automatically.
// Cluster-scoped: it changes the shared wire format.
func WithReliableDelivery() UntypedOption {
	return clusterOpt("WithReliableDelivery", func(c *core.Common) { c.Reliable = true })
}

// WithRetry tunes the reliable delivery layer (and enables it): max is the
// attempt budget per message (0 = retry until the destination is declared
// dead), base the initial backoff and maxDelay its cap. Zero durations
// keep the defaults (500µs, 50ms). Cluster-scoped.
func WithRetry(max int, base, maxDelay time.Duration) UntypedOption {
	return clusterOpt("WithRetry", func(c *core.Common) {
		c.Reliable = true
		c.RetryMax = max
		c.RetryBase = base
		c.RetryMaxDelay = maxDelay
	})
}

// WithChaos wires a fault-injection plan into the run's transport: every
// place's outbound messages pass through a FaultFabric driven by the plan.
// Reliable delivery is enabled automatically — injected faults are meant
// to be tolerated, not to corrupt the run. Cluster-scoped: the fabric
// carries every job's traffic.
func WithChaos(plan *ChaosPlan) UntypedOption {
	return clusterOpt("WithChaos", func(c *core.Common) { c.Chaos = plan })
}

// WithEvents registers a structured run-event callback: place suspicion
// and death, recovery start/finish, chaos injections. fn runs on a
// dedicated goroutine; slow consumers drop events rather than stall the
// run. Cluster-scoped.
func WithEvents(fn func(Event)) UntypedOption {
	return clusterOpt("WithEvents", func(c *core.Common) { c.Events = fn })
}

// WithMetrics turns on the per-place metrics registry: scheduler, cache,
// transport, recovery and per-job instruments, readable after the run
// through Dag.Metrics / Job.Metrics / Cluster.Metrics. Off by default;
// the disabled path costs nothing on the hot paths. Cluster-scoped: jobs
// share the registries, isolated through the job.* vec instruments.
func WithMetrics() UntypedOption {
	return clusterOpt("WithMetrics", func(c *core.Common) { c.Metrics = true })
}

// WithMetricsObserver enables metrics and delivers the per-place
// snapshots when the cluster closes — for harnesses that execute many
// computations and want the instruments without holding the Job.
// Single-process runtime only. Cluster-scoped.
func WithMetricsObserver(fn func([]*MetricsSnapshot)) UntypedOption {
	return clusterOpt("WithMetricsObserver", func(c *core.Common) { c.MetricsObserver = fn })
}

// SpanLog collects timed spans (epochs, tiles, steal round-trips,
// recovery phases) for Chrome trace-event export; see WithSpans.
type SpanLog = trace.SpanLog

// NewSpanLog creates a span log keeping up to maxSpans spans (0 uses the
// default cap); once full, later spans are dropped, never reallocated.
func NewSpanLog(maxSpans int) *SpanLog { return trace.NewSpanLog(maxSpans) }

// WithSpans records the run's spans into sl. Write the result with
// SpanLog.WriteChromeTrace and load it in chrome://tracing or Perfetto.
// Span collection is independent of WithMetrics. Job-scoped; on a
// multi-job cluster each job's spans carry a "j<id>:" prefix.
func WithSpans(sl *SpanLog) UntypedOption {
	return jobOpt("WithSpans", func(c *core.Common) { c.Spans = sl })
}

// WithCodec overrides the value codec (default: gob; use the fixed-width
// scalar codecs or a custom implementation on hot paths). Job-scoped.
func WithCodec[T any](cd Codec[T]) Option[T] {
	return typedOption[T]{name: "WithCodec", fn: func(c *core.Config[T]) { c.Codec = cd }}
}

// DistKind names a built-in distribution of the DAG over places
// (paper §VI-E "Distribution of DAG").
type DistKind string

// Built-in distributions.
const (
	BlockRowDist  DistKind = "blockrow"
	BlockColDist  DistKind = "blockcol"
	CyclicRowDist DistKind = "cyclicrow"
	CyclicColDist DistKind = "cycliccol"
)

// WithDist selects a built-in distribution (default BlockRowDist, the
// paper's "divided by the row" layout). Job-scoped: each job distributes
// its own array.
func WithDist(kind DistKind) UntypedOption {
	return jobOpt("WithDist", func(c *core.Common) {
		switch kind {
		case BlockColDist:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewBlockCol(h, w, n) }
		case CyclicRowDist:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewCyclicRow(h, w, n) }
		case CyclicColDist:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewCyclicCol(h, w, n) }
		default:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewBlockRow(h, w, n) }
		}
	})
}

// WithBlockCyclicDist deals fixed-size row blocks round-robin — the HPC
// compromise between BlockRow's locality and CyclicRow's wavefront
// balance. Job-scoped.
func WithBlockCyclicDist(blockRows int32) UntypedOption {
	return jobOpt("WithBlockCyclicDist", func(c *core.Common) {
		c.NewDist = func(h, w int32, n int) dist.Dist {
			return dist.NewBlockCyclicRow(h, w, blockRows, n)
		}
	})
}

// WithBlock2DDist tiles the matrix into a pr×pc grid of blocks; the run
// must use exactly pr*pc places. Shorter per-place borders in both
// directions lower communication for diagonal-dependency patterns.
// Job-scoped.
func WithBlock2DDist(pr, pc int) UntypedOption {
	return jobOpt("WithBlock2DDist", func(c *core.Common) {
		c.NewDist = func(h, w int32, n int) dist.Dist {
			return dist.NewBlock2D(h, w, pr, pc)
		}
	})
}

// WithCustomDist installs a user-supplied cell→place mapping, the
// fully-flexible form of the paper's Dist refinement. fn must map every
// cell to a place in [0, places). Job-scoped.
func WithCustomDist(fn func(i, j int32, places int) int) UntypedOption {
	return jobOpt("WithCustomDist", func(c *core.Common) {
		c.NewDist = func(h, w int32, n int) dist.Dist {
			ps := make([]int, n)
			for k := range ps {
				ps[k] = k
			}
			d, err := dist.NewFunc(h, w, ps, func(i, j int32) int { return fn(i, j, n) })
			if err != nil {
				panic(err) // surfaced as a cluster construction failure in tests
			}
			return d
		}
	})
}

// SnapshotStore is the stable store behind the periodic-snapshot recovery
// baseline (X10's ResilientDistArray), exposed for the ablation benchmark.
type SnapshotStore[T any] = distarray.SnapshotStore[T]

// NewSnapshotStore creates a snapshot store; valueSize is the modeled
// encoded width of one vertex value.
func NewSnapshotStore[T any](valueSize int) *SnapshotStore[T] {
	return distarray.NewSnapshotStore[T](valueSize)
}

// WithSnapshotRecovery switches recovery to the periodic-snapshot
// baseline: every place saves its finished vertices to store every
// `every` completions, and recovery restores from the store instead of
// redistributing survivor state. Job-scoped.
func WithSnapshotRecovery[T any](store *SnapshotStore[T], every int64) Option[T] {
	return typedOption[T]{name: "WithSnapshotRecovery", fn: func(c *core.Config[T]) {
		c.Recovery = core.RecoverSnapshot
		c.Snapshot = store
		c.SnapshotEvery = every
	}}
}

// Trace collects per-place telemetry from a run: busy time, vertices
// executed per place, fetch-wait time, utilization and load imbalance.
type Trace = trace.Collector

// NewTrace creates a collector for `places` places keeping up to
// maxEvents timeline events.
func NewTrace(places, maxEvents int) *Trace { return trace.New(places, maxEvents) }

// WithTrace attaches a telemetry collector to the run. Job-scoped.
func WithTrace(tr *Trace) UntypedOption {
	return jobOpt("WithTrace", func(c *core.Common) { c.Trace = tr })
}

// WithSpill keeps vertex values in a paged disk-backed store instead of
// RAM — the paper's §X future work for problems larger than memory.
// pageVals values per page, residentPages pages kept in RAM per place;
// zero values select the defaults (4096 and 64). dir is the scratch
// directory ("" = the OS temp dir). Job-scoped.
func WithSpill(dir string, pageVals, residentPages int) UntypedOption {
	return jobOpt("WithSpill", func(c *core.Common) {
		c.Spill = &core.SpillConfig{Dir: dir, PageVals: pageVals, ResidentPages: residentPages}
	})
}

// WithSnapshotOverheadOnly keeps the paper's recovery mechanism but also
// writes periodic snapshots, to measure the baseline's fault-free cost.
// Job-scoped.
func WithSnapshotOverheadOnly[T any](store *SnapshotStore[T], every int64) Option[T] {
	return typedOption[T]{name: "WithSnapshotOverheadOnly", fn: func(c *core.Config[T]) {
		c.Snapshot = store
		c.SnapshotEvery = every
	}}
}

// ChaosPlan is a seeded fault-injection schedule applied to a run's
// transport: message drop, duplication, delay/reordering and asymmetric
// partition windows, reproducible from the seed. See WithChaos.
type ChaosPlan = transport.FaultPlan

// ChaosPartition is one directed partition window of a ChaosPlan.
type ChaosPartition = transport.Partition

// ChaosEvent describes one injected fault (ChaosPlan.OnInject).
type ChaosEvent = transport.InjectEvent

// ChaosStats counts the faults a plan injected.
type ChaosStats = transport.InjectStats

// Deprecated generic forms of the untyped options above, kept so pre-chaos
// call sites (dpx10.PlacesT[int32](8), formerly dpx10.Places[int32](8))
// migrate mechanically. New code should use the untyped constructors;
// DESIGN.md §9 schedules these aliases for removal with the next major
// revision.

// PlacesT is the deprecated generic form of Places.
//
// Deprecated: use Places.
func PlacesT[T any](n int) Option[T] { return Places(n) }

// ThreadsT is the deprecated generic form of Threads.
//
// Deprecated: use Threads.
func ThreadsT[T any](n int) Option[T] { return Threads(n) }

// WithStrategyT is the deprecated generic form of WithStrategy.
//
// Deprecated: use WithStrategy.
func WithStrategyT[T any](s Strategy) Option[T] { return WithStrategy(s) }

// CacheSizeT is the deprecated generic form of CacheSize.
//
// Deprecated: use CacheSize.
func CacheSizeT[T any](entries int) Option[T] { return CacheSize(entries) }

// WithAggregationT is the deprecated generic form of WithAggregation.
//
// Deprecated: use WithAggregation.
func WithAggregationT[T any](window time.Duration, maxBatch int) Option[T] {
	return WithAggregation(window, maxBatch)
}

// WithoutAggregationT is the deprecated generic form of WithoutAggregation.
//
// Deprecated: use WithoutAggregation.
func WithoutAggregationT[T any]() Option[T] { return WithoutAggregation() }

// WithoutValuePushT is the deprecated generic form of WithoutValuePush.
//
// Deprecated: use WithoutValuePush.
func WithoutValuePushT[T any]() Option[T] { return WithoutValuePush() }

// RestoreRemoteT is the deprecated generic form of RestoreRemote.
//
// Deprecated: use RestoreRemote.
func RestoreRemoteT[T any]() Option[T] { return RestoreRemote() }

// WithDistT is the deprecated generic form of WithDist.
//
// Deprecated: use WithDist.
func WithDistT[T any](kind DistKind) Option[T] { return WithDist(kind) }

// WithBlockCyclicDistT is the deprecated generic form of
// WithBlockCyclicDist.
//
// Deprecated: use WithBlockCyclicDist.
func WithBlockCyclicDistT[T any](blockRows int32) Option[T] { return WithBlockCyclicDist(blockRows) }

// WithBlock2DDistT is the deprecated generic form of WithBlock2DDist.
//
// Deprecated: use WithBlock2DDist.
func WithBlock2DDistT[T any](pr, pc int) Option[T] { return WithBlock2DDist(pr, pc) }

// WithCustomDistT is the deprecated generic form of WithCustomDist.
//
// Deprecated: use WithCustomDist.
func WithCustomDistT[T any](fn func(i, j int32, places int) int) Option[T] {
	return WithCustomDist(fn)
}

// WithTraceT is the deprecated generic form of WithTrace.
//
// Deprecated: use WithTrace.
func WithTraceT[T any](tr *Trace) Option[T] { return WithTrace(tr) }

// WithSpillT is the deprecated generic form of WithSpill.
//
// Deprecated: use WithSpill.
func WithSpillT[T any](dir string, pageVals, residentPages int) Option[T] {
	return WithSpill(dir, pageVals, residentPages)
}
