package dpx10

import (
	"time"

	"github.com/dpx10/dpx10/internal/core"
	"github.com/dpx10/dpx10/internal/dist"
	"github.com/dpx10/dpx10/internal/distarray"
	"github.com/dpx10/dpx10/internal/sched"
	"github.com/dpx10/dpx10/internal/trace"
)

// Option configures a run. Options are generic in the vertex value type so
// that value-typed settings (codec, snapshot store) stay type-safe.
type Option[T any] func(*core.Config[T])

// Places sets the number of places — X10_NPLACES (default 1).
func Places[T any](n int) Option[T] {
	return func(c *core.Config[T]) { c.Places = n }
}

// Threads sets the per-place worker pool width — X10_NTHREADS (default 2).
func Threads[T any](n int) Option[T] {
	return func(c *core.Config[T]) { c.Threads = n }
}

// Strategy selects the vertex scheduling policy (paper §VI-C).
type Strategy = sched.Strategy

// Scheduling strategies.
const (
	LocalScheduling   = sched.Local
	RandomScheduling  = sched.Random
	MinCommScheduling = sched.MinComm
	// StealScheduling keeps execution owner-local but lets idle workers
	// pull ready vertices from busy places — this repository's extension
	// in the direction of the work-stealing schedulers the paper cites.
	StealScheduling = sched.Steal
)

// WithStrategy sets the scheduling strategy (default local).
func WithStrategy[T any](s Strategy) Option[T] {
	return func(c *core.Config[T]) { c.Strategy = s }
}

// CacheSize sets the per-place remote-vertex cache capacity in entries;
// 0 disables the cache (paper §VI-E "Cache size").
func CacheSize[T any](entries int) Option[T] {
	return func(c *core.Config[T]) { c.CacheSize = entries }
}

// WithAggregation tunes the outbound decrement aggregator, which is on by
// default: window bounds how long a buffered decrement may wait before
// its batch is flushed, maxBatch is the record count that flushes a
// destination's batch immediately. Zero values keep the defaults
// (1ms, 256 records).
func WithAggregation[T any](window time.Duration, maxBatch int) Option[T] {
	return func(c *core.Config[T]) {
		c.AggDisabled = false
		c.AggWindow = window
		c.AggMaxBatch = maxBatch
	}
}

// WithoutAggregation disables cross-place decrement aggregation and value
// push, restoring one message per completed vertex per destination — the
// baseline arm of the agg ablation.
func WithoutAggregation[T any]() Option[T] {
	return func(c *core.Config[T]) { c.AggDisabled = true }
}

// WithoutValuePush keeps decrement aggregation but stops piggybacking
// finished vertex values onto the batches, isolating coalescing from
// fetch avoidance for measurement.
func WithoutValuePush[T any]() Option[T] {
	return func(c *core.Config[T]) { c.PushDisabled = true }
}

// RestoreRemote makes recovery copy finished vertices to their new owners
// instead of recomputing them — the paper's §VI-E "Restore manner" switch
// for computations that cost more than communication.
func RestoreRemote[T any]() Option[T] {
	return func(c *core.Config[T]) { c.RestoreRemote = true }
}

// WithCodec overrides the value codec (default: gob; use the fixed-width
// scalar codecs or a custom implementation on hot paths).
func WithCodec[T any](cd Codec[T]) Option[T] {
	return func(c *core.Config[T]) { c.Codec = cd }
}

// DistKind names a built-in distribution of the DAG over places
// (paper §VI-E "Distribution of DAG").
type DistKind string

// Built-in distributions.
const (
	BlockRowDist  DistKind = "blockrow"
	BlockColDist  DistKind = "blockcol"
	CyclicRowDist DistKind = "cyclicrow"
	CyclicColDist DistKind = "cycliccol"
)

// WithDist selects a built-in distribution (default BlockRowDist, the
// paper's "divided by the row" layout).
func WithDist[T any](kind DistKind) Option[T] {
	return func(c *core.Config[T]) {
		switch kind {
		case BlockColDist:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewBlockCol(h, w, n) }
		case CyclicRowDist:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewCyclicRow(h, w, n) }
		case CyclicColDist:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewCyclicCol(h, w, n) }
		default:
			c.NewDist = func(h, w int32, n int) dist.Dist { return dist.NewBlockRow(h, w, n) }
		}
	}
}

// WithBlockCyclicDist deals fixed-size row blocks round-robin — the HPC
// compromise between BlockRow's locality and CyclicRow's wavefront
// balance.
func WithBlockCyclicDist[T any](blockRows int32) Option[T] {
	return func(c *core.Config[T]) {
		c.NewDist = func(h, w int32, n int) dist.Dist {
			return dist.NewBlockCyclicRow(h, w, blockRows, n)
		}
	}
}

// WithBlock2DDist tiles the matrix into a pr×pc grid of blocks; the run
// must use exactly pr*pc places. Shorter per-place borders in both
// directions lower communication for diagonal-dependency patterns.
func WithBlock2DDist[T any](pr, pc int) Option[T] {
	return func(c *core.Config[T]) {
		c.NewDist = func(h, w int32, n int) dist.Dist {
			return dist.NewBlock2D(h, w, pr, pc)
		}
	}
}

// WithCustomDist installs a user-supplied cell→place mapping, the
// fully-flexible form of the paper's Dist refinement. fn must map every
// cell to a place in [0, places).
func WithCustomDist[T any](fn func(i, j int32, places int) int) Option[T] {
	return func(c *core.Config[T]) {
		c.NewDist = func(h, w int32, n int) dist.Dist {
			ps := make([]int, n)
			for k := range ps {
				ps[k] = k
			}
			d, err := dist.NewFunc(h, w, ps, func(i, j int32) int { return fn(i, j, n) })
			if err != nil {
				panic(err) // surfaced as a cluster construction failure in tests
			}
			return d
		}
	}
}

// SnapshotStore is the stable store behind the periodic-snapshot recovery
// baseline (X10's ResilientDistArray), exposed for the ablation benchmark.
type SnapshotStore[T any] = distarray.SnapshotStore[T]

// NewSnapshotStore creates a snapshot store; valueSize is the modeled
// encoded width of one vertex value.
func NewSnapshotStore[T any](valueSize int) *SnapshotStore[T] {
	return distarray.NewSnapshotStore[T](valueSize)
}

// WithSnapshotRecovery switches recovery to the periodic-snapshot
// baseline: every place saves its finished vertices to store every
// `every` completions, and recovery restores from the store instead of
// redistributing survivor state.
func WithSnapshotRecovery[T any](store *SnapshotStore[T], every int64) Option[T] {
	return func(c *core.Config[T]) {
		c.Recovery = core.RecoverSnapshot
		c.Snapshot = store
		c.SnapshotEvery = every
	}
}

// Trace collects per-place telemetry from a run: busy time, vertices
// executed per place, fetch-wait time, utilization and load imbalance.
type Trace = trace.Collector

// NewTrace creates a collector for `places` places keeping up to
// maxEvents timeline events.
func NewTrace(places, maxEvents int) *Trace { return trace.New(places, maxEvents) }

// WithTrace attaches a telemetry collector to the run.
func WithTrace[T any](tr *Trace) Option[T] {
	return func(c *core.Config[T]) { c.Trace = tr }
}

// WithSpill keeps vertex values in a paged disk-backed store instead of
// RAM — the paper's §X future work for problems larger than memory.
// pageVals values per page, residentPages pages kept in RAM per place;
// zero values select the defaults (4096 and 64). dir is the scratch
// directory ("" = the OS temp dir).
func WithSpill[T any](dir string, pageVals, residentPages int) Option[T] {
	return func(c *core.Config[T]) {
		c.Spill = &core.SpillConfig{Dir: dir, PageVals: pageVals, ResidentPages: residentPages}
	}
}

// WithSnapshotOverheadOnly keeps the paper's recovery mechanism but also
// writes periodic snapshots, to measure the baseline's fault-free cost.
func WithSnapshotOverheadOnly[T any](store *SnapshotStore[T], every int64) Option[T] {
	return func(c *core.Config[T]) {
		c.Snapshot = store
		c.SnapshotEvery = every
	}
}
